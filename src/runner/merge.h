// Deterministic merge of per-shard campaign artifacts.
//
// A sharded campaign leaves one store per shard (`<results>.shard<id>` +
// optional `<journal>.shard<id>`, each with its own manifest) plus the
// shard index (`<results>.shards`). merge_shards() folds them into the
// canonical results CSV + journal, byte-identical to what the unsharded
// `--jobs N` run writes:
//
//   * CSV — the shared header line, then every shard's CRC-valid rows
//     concatenated in ascending shard order. Shards are contiguous global
//     index ranges and each worker commits in canonical order, so the
//     concatenation IS the canonical row order;
//   * journal — the campaign-begin line (identical bytes in every shard:
//     it carries campaign totals, not shard state), then each shard's
//     keyed per-trial blocks in order, then a campaign-end line
//     synthesized through the same Journal serializer with totals
//     recomputed from the merged rows. Keyless control lines in shard
//     journals (shard-local stop/end events) are dropped, exactly as a
//     resume drops superseded control lines;
//   * manifest — the shards' common identity digests, incarnations summed.
//
// The merge refuses (reports issues, writes nothing) unless every shard is
// complete and clean: full row coverage of [0, trial_count), no torn tails,
// agreeing manifests. All writes are atomic replaces and the inputs are
// never modified, so the merge is idempotent — killed mid-merge (the
// power-cut-during-merge case), a rerun produces the identical bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runner/store.h"

namespace hbmrd::runner {

struct MergeReport;

struct MergeOptions {
  /// Canonical results CSV to produce; the shard index and shard stores
  /// are found next to it.
  std::string results_path;
  /// Canonical journal to produce ("" = the campaign never journaled).
  std::string journal_path;
  /// Storage backend; null = the shared PosixStore.
  std::shared_ptr<Store> store;
  /// Post-merge hook, invoked once after the canonical artifacts were
  /// written and verified (report.ok) — the seam downstream consumers use
  /// to derive artifacts from the merged CSV without re-reading shards
  /// (e.g. serve::export_campaign_index builds a .hbmidx query index; see
  /// docs/SERVING.md). Exceptions propagate to the merge caller.
  std::function<void(const MergeReport&)> on_merged;
};

struct MergeIssue {
  std::string file;
  std::string what;
};

struct MergeReport {
  /// Everything verified and the canonical artifacts were written.
  bool ok = false;
  std::vector<MergeIssue> issues;
  std::uint64_t shards = 0;
  std::uint64_t rows = 0;           // merged CSV data rows
  std::uint64_t journal_lines = 0;  // merged journal lines
  std::uint64_t completed = 0;      // rows with status ok
  std::uint64_t quarantined = 0;    // rows with status quarantined
};

[[nodiscard]] MergeReport merge_shards(const MergeOptions& options);

}  // namespace hbmrd::runner
