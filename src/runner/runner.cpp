#include "runner/runner.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/csv.h"

namespace hbmrd::runner {

namespace {

/// Pseudo-fault label for a guard band that never recovered in time.
constexpr const char* kGuardTimeout = "guard-band-timeout";
constexpr const char* kTrialTimeout = "trial-timeout";

struct CheckpointRow {
  TrialStatus status = TrialStatus::kOkResumed;
  std::vector<std::string> cells;
};

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

void validate_cell(const std::string& cell, const char* what) {
  if (cell.find_first_of(",\"\n") != std::string::npos) {
    throw std::invalid_argument(
        std::string("CampaignRunner: ") + what +
        " must not contain commas, quotes, or newlines: " + cell);
  }
}

}  // namespace

const char* to_string(TrialStatus status) {
  switch (status) {
    case TrialStatus::kOk: return "ok";
    case TrialStatus::kOkResumed: return "ok";  // same on-disk status
    case TrialStatus::kQuarantined: return "quarantined";
    case TrialStatus::kNotRun: return "not-run";
  }
  return "unknown";
}

double CampaignReport::completion_rate() const {
  const auto attempted = completed + resumed + quarantined;
  if (attempted == 0) return 1.0;
  return static_cast<double>(completed + resumed) /
         static_cast<double>(attempted);
}

std::vector<std::string> CampaignReport::quarantined_keys() const {
  std::vector<std::string> keys;
  for (const auto& record : records) {
    if (record.status == TrialStatus::kQuarantined) keys.push_back(record.key);
  }
  return keys;
}

CampaignRunner::CampaignRunner(bender::HbmChip& chip, RunnerConfig config)
    : chip_(chip),
      config_(std::move(config)),
      faulty_(chip, fault::FaultPlan(config_.faults)) {}

double CampaignRunner::setpoint_c() const {
  const auto& profile = chip_.profile();
  return profile.temperature_controlled ? profile.target_temperature_c
                                        : profile.ambient_temperature_c;
}

double CampaignRunner::band_c() const {
  if (config_.guard.band_c > 0.0) return config_.guard.band_c;
  return chip_.profile().temperature_controlled ? 1.0 : 3.0;
}

bool CampaignRunner::wait_for_guard_band(Journal& journal,
                                         CampaignReport& report,
                                         const std::string& key,
                                         int attempt) {
  if (!config_.guard.enabled) return true;
  const double target = setpoint_c();
  const double band = band_c();
  double waited = 0.0;
  while (true) {
    // Read the physical rig sensor, not the (possibly pinned) device view.
    const double measured = chip_.rig().temperature_c();
    if (std::abs(measured - target) <= band) {
      if (waited > 0.0) {
        ++report.guard_blocks;
        report.guard_wait_s += waited;
        journal.event("guard-wait")
            .field("trial", key)
            .field("attempt", attempt)
            .field("waited_s", waited, 1)
            .field("measured_c", measured, 2);
      }
      return true;
    }
    if (waited >= config_.guard.max_wait_s) {
      journal.event("guard-timeout")
          .field("trial", key)
          .field("attempt", attempt)
          .field("waited_s", waited, 1)
          .field("measured_c", measured, 2);
      report.guard_wait_s += waited;
      ++report.guard_blocks;
      return false;
    }
    chip_.idle(config_.guard.poll_s);
    waited += config_.guard.poll_s;
  }
}

CampaignReport CampaignRunner::run(const std::vector<Trial>& trials) {
  const auto width = config_.result_columns.size();
  std::vector<std::string> header = {"trial", "status"};
  header.insert(header.end(), config_.result_columns.begin(),
                config_.result_columns.end());
  for (const auto& trial : trials) validate_cell(trial.key, "trial key");

  // -- Load the checkpoint (resume): committed rows are skipped. A partial
  // trailing line from a mid-write kill is discarded by rewriting the file
  // with only the complete rows before appending continues.
  std::unordered_map<std::string, CheckpointRow> committed;
  std::vector<std::string> committed_lines;
  if (config_.resume && !config_.results_path.empty()) {
    std::ifstream in(config_.results_path);
    if (in) {
      std::string contents((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
      std::istringstream lines(contents);
      std::string line;
      bool first = true;
      std::size_t consumed = 0;
      while (std::getline(lines, line)) {
        const bool terminated = consumed + line.size() < contents.size() &&
                                contents[consumed + line.size()] == '\n';
        consumed += line.size() + 1;
        if (!terminated) break;  // partial trailing write: uncommitted
        const auto cells = split_csv_line(line);
        if (first) {
          first = false;
          if (cells != header) {
            throw std::runtime_error(
                "CampaignRunner: checkpoint header mismatch in " +
                config_.results_path);
          }
          continue;
        }
        if (cells.size() != 2 + width) break;  // corrupt tail: stop trusting
        CheckpointRow row;
        row.status = cells[1] == "quarantined" ? TrialStatus::kQuarantined
                                               : TrialStatus::kOkResumed;
        row.cells.assign(cells.begin() + 2, cells.end());
        committed.emplace(cells[0], row);
        committed_lines.push_back(line);
      }
    }
    // Rewrite the checkpoint with exactly the rows we trust.
    if (!committed.empty()) {
      util::CsvWriter rewrite(config_.results_path, header);
      for (const auto& line : committed_lines) {
        rewrite.row(split_csv_line(line));
      }
      rewrite.flush();
    }
  }

  std::unique_ptr<util::CsvWriter> csv;
  if (!config_.results_path.empty()) {
    csv = std::make_unique<util::CsvWriter>(
        config_.results_path, header,
        config_.resume ? util::CsvWriter::Mode::kAppend
                       : util::CsvWriter::Mode::kTruncate);
  }

  Journal journal(config_.journal_path, config_.resume);
  const auto& faults = config_.faults;
  journal.event(config_.resume && !committed.empty() ? "campaign-resume"
                                                     : "campaign-begin")
      .field("trials", static_cast<std::uint64_t>(trials.size()))
      .field("committed", static_cast<std::uint64_t>(committed.size()))
      .field("seed", faults.seed)
      .field("transient_rate", faults.transient_rate, 4)
      .field("thermal_rate", faults.thermal_rate, 4)
      .field("persistent_rate", faults.persistent_rate, 4)
      .field("fatal_rate", faults.fatal_rate, 4)
      .field("setpoint_c", setpoint_c(), 1)
      .field("band_c", band_c(), 2);

  // Campaign incarnation: how many rows were already committed when this
  // run started. Keys the fatal-fault draw so a crash does not deadlock
  // the resumed campaign on the same trial (transient/persistent/thermal
  // draws stay incarnation-independent, keeping results bit-identical).
  faulty_.set_incarnation(static_cast<std::uint64_t>(committed.size()));

  CampaignReport report;
  std::uint64_t processed = 0;
  const double rig_t0 = chip_.rig().time_s();

  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto& trial = trials[i];
    if (auto it = committed.find(trial.key); it != committed.end()) {
      TrialRecord record;
      record.key = trial.key;
      record.status = it->second.status;
      record.cells = it->second.cells;
      ++report.resumed;
      report.records.push_back(std::move(record));
      continue;
    }
    if (config_.stop_after_trials != 0 &&
        processed >= config_.stop_after_trials) {
      report.aborted = true;
      report.abort_reason = "stop-after-trials";
      journal.event("campaign-stop")
          .field("reason", report.abort_reason)
          .field("processed", processed);
      break;
    }
    ++processed;

    TrialRecord record;
    record.key = trial.key;
    for (int attempt = 1; attempt <= config_.retry.max_attempts; ++attempt) {
      record.attempts = attempt;
      faulty_.begin_attempt(static_cast<std::uint64_t>(i), attempt);
      std::string fault_kind;
      fault::FaultClass fault_cls = fault::FaultClass::kTransient;

      if (!wait_for_guard_band(journal, report, trial.key, attempt)) {
        fault_kind = kGuardTimeout;
      } else {
        const double attempt_t0 = chip_.rig().time_s();
        chip_.pin_temperature(setpoint_c());
        try {
          auto cells = trial.body(faulty_);
          chip_.pin_temperature(std::nullopt);
          if (cells.size() != width) {
            throw std::logic_error(
                "CampaignRunner: trial '" + trial.key + "' returned " +
                std::to_string(cells.size()) + " cells, expected " +
                std::to_string(width));
          }
          for (const auto& cell : cells) validate_cell(cell, "result cell");
          const double attempt_s = chip_.rig().time_s() - attempt_t0;
          if (config_.trial_timeout_s > 0.0 &&
              attempt_s > config_.trial_timeout_s) {
            fault_kind = kTrialTimeout;
            journal.event("fault")
                .field("trial", trial.key)
                .field("attempt", attempt)
                .field("kind", fault_kind)
                .field("class", "transient")
                .field("attempt_s", attempt_s, 1);
          } else {
            record.status = TrialStatus::kOk;
            record.cells = std::move(cells);
          }
        } catch (const fault::FaultError& error) {
          chip_.pin_temperature(std::nullopt);
          fault_kind = fault::to_string(error.kind());
          fault_cls = error.fault_class();
          journal.event("fault")
              .field("trial", trial.key)
              .field("attempt", attempt)
              .field("kind", fault_kind)
              .field("class", fault::to_string(fault_cls));
        }
      }

      if (record.status == TrialStatus::kOk) {
        journal.event("trial-ok")
            .field("trial", trial.key)
            .field("attempts", attempt)
            .field("rig_t", chip_.rig().time_s(), 1);
        break;
      }
      if (fault_cls == fault::FaultClass::kFatal) {
        report.aborted = true;
        report.abort_reason = fault_kind;
        journal.event("campaign-abort")
            .field("trial", trial.key)
            .field("reason", fault_kind)
            .field("rig_t", chip_.rig().time_s(), 1);
        journal.flush();
        if (csv) csv->flush();
        report.campaign_seconds = chip_.rig().time_s() - rig_t0;
        return report;
      }
      if (fault_cls == fault::FaultClass::kPersistent ||
          attempt == config_.retry.max_attempts) {
        record.status = TrialStatus::kQuarantined;
        record.quarantine_reason = fault_kind;
        break;
      }
      const double delay =
          config_.retry.backoff_s(faults.seed, static_cast<std::uint64_t>(i),
                                  attempt);
      ++report.retries;
      report.backoff_wait_s += delay;
      journal.event("retry")
          .field("trial", trial.key)
          .field("attempt", attempt)
          .field("backoff_s", delay, 3);
      chip_.idle(delay);
    }

    // -- Commit: one CSV row per finished trial (ok or quarantined).
    if (record.status == TrialStatus::kQuarantined) {
      ++report.quarantined;
      journal.event("quarantine")
          .field("trial", trial.key)
          .field("attempts", record.attempts)
          .field("reason", record.quarantine_reason);
    } else {
      ++report.completed;
    }
    if (csv) {
      std::vector<std::string> row = {record.key, to_string(record.status)};
      row.insert(row.end(), record.cells.begin(), record.cells.end());
      row.resize(2 + width);  // quarantined rows: empty payload cells
      csv->row(row);
      csv->flush();
    }
    journal.flush();
    report.records.push_back(std::move(record));
  }

  report.campaign_seconds = chip_.rig().time_s() - rig_t0;
  const auto& stats = faulty_.stats();
  journal.event("campaign-end")
      .field("completed", report.completed)
      .field("resumed", report.resumed)
      .field("quarantined", report.quarantined)
      .field("retries", report.retries)
      .field("faults_injected", stats.injected_total)
      .field("thermal_excursions", stats.thermal_excursions)
      .field("guard_blocks", report.guard_blocks)
      .field("guard_wait_s", report.guard_wait_s, 1)
      .field("backoff_wait_s", report.backoff_wait_s, 1)
      .field("campaign_s", report.campaign_seconds, 1);
  journal.flush();
  return report;
}

}  // namespace hbmrd::runner
