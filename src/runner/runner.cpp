#include "runner/runner.h"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "runner/parallel.h"
#include "runner/worker.h"
#include "util/csv.h"

namespace hbmrd::runner {

namespace {

struct CheckpointRow {
  TrialStatus status = TrialStatus::kOkResumed;
  std::vector<std::string> cells;
};

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

void accumulate(dram::BankCounters& into, const dram::BankCounters& delta) {
  into.activations += delta.activations;
  into.refresh_commands += delta.refresh_commands;
  into.defense_victim_refreshes += delta.defense_victim_refreshes;
  into.bitflips_materialized += delta.bitflips_materialized;
}

}  // namespace

const char* to_string(TrialStatus status) {
  switch (status) {
    case TrialStatus::kOk: return "ok";
    case TrialStatus::kOkResumed: return "ok";  // same on-disk status
    case TrialStatus::kQuarantined: return "quarantined";
    case TrialStatus::kNotRun: return "not-run";
  }
  return "unknown";
}

double CampaignReport::completion_rate() const {
  const auto attempted = completed + resumed + quarantined;
  if (attempted == 0) return 1.0;
  return static_cast<double>(completed + resumed) /
         static_cast<double>(attempted);
}

std::vector<std::string> CampaignReport::quarantined_keys() const {
  std::vector<std::string> keys;
  for (const auto& record : records) {
    if (record.status == TrialStatus::kQuarantined) keys.push_back(record.key);
  }
  return keys;
}

CampaignRunner::CampaignRunner(bender::HbmChip& chip, RunnerConfig config)
    : chip_(chip),
      config_(std::move(config)),
      faulty_(chip, fault::FaultPlan(config_.faults)) {}

double CampaignRunner::setpoint_c() const {
  const auto& profile = chip_.profile();
  return profile.temperature_controlled ? profile.target_temperature_c
                                        : profile.ambient_temperature_c;
}

double CampaignRunner::band_c() const {
  if (config_.guard.band_c > 0.0) return config_.guard.band_c;
  return chip_.profile().temperature_controlled ? 1.0 : 3.0;
}

CampaignReport CampaignRunner::run(const std::vector<Trial>& trials) {
  const auto width = config_.result_columns.size();
  std::vector<std::string> header = {"trial", "status"};
  header.insert(header.end(), config_.result_columns.begin(),
                config_.result_columns.end());
  for (const auto& trial : trials) validate_csv_cell(trial.key, "trial key");

  // -- Load the checkpoint (resume): committed rows are skipped. A partial
  // trailing line from a mid-write kill is discarded by rewriting the file
  // with only the complete rows before appending continues.
  std::unordered_map<std::string, CheckpointRow> committed;
  std::vector<std::string> committed_lines;
  if (config_.resume && !config_.results_path.empty()) {
    std::ifstream in(config_.results_path);
    if (in) {
      std::string contents((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
      std::istringstream lines(contents);
      std::string line;
      bool first = true;
      std::size_t consumed = 0;
      while (std::getline(lines, line)) {
        const bool terminated = consumed + line.size() < contents.size() &&
                                contents[consumed + line.size()] == '\n';
        consumed += line.size() + 1;
        if (!terminated) break;  // partial trailing write: uncommitted
        const auto cells = split_csv_line(line);
        if (first) {
          first = false;
          if (cells != header) {
            throw std::runtime_error(
                "CampaignRunner: checkpoint header mismatch in " +
                config_.results_path);
          }
          continue;
        }
        if (cells.size() != 2 + width) break;  // corrupt tail: stop trusting
        CheckpointRow row;
        row.status = cells[1] == "quarantined" ? TrialStatus::kQuarantined
                                               : TrialStatus::kOkResumed;
        row.cells.assign(cells.begin() + 2, cells.end());
        committed.emplace(cells[0], row);
        committed_lines.push_back(line);
      }
    }
    // Rewrite the checkpoint with exactly the rows we trust.
    if (!committed.empty()) {
      util::CsvWriter rewrite(config_.results_path, header);
      for (const auto& line : committed_lines) {
        rewrite.row(split_csv_line(line));
      }
      rewrite.flush();
    }
  }

  std::unique_ptr<util::CsvWriter> csv;
  if (!config_.results_path.empty()) {
    csv = std::make_unique<util::CsvWriter>(
        config_.results_path, header,
        config_.resume ? util::CsvWriter::Mode::kAppend
                       : util::CsvWriter::Mode::kTruncate);
  }

  Journal journal(config_.journal_path, config_.resume);
  const auto& faults = config_.faults;
  journal.event(config_.resume && !committed.empty() ? "campaign-resume"
                                                     : "campaign-begin")
      .field("trials", static_cast<std::uint64_t>(trials.size()))
      .field("committed", static_cast<std::uint64_t>(committed.size()))
      .field("seed", faults.seed)
      .field("transient_rate", faults.transient_rate, 4)
      .field("thermal_rate", faults.thermal_rate, 4)
      .field("persistent_rate", faults.persistent_rate, 4)
      .field("fatal_rate", faults.fatal_rate, 4)
      .field("setpoint_c", setpoint_c(), 1)
      .field("band_c", band_c(), 2);

  // Campaign incarnation: how many rows were already committed when this
  // run started. Keys the fatal-fault draw so a crash does not deadlock
  // the resumed campaign on the same trial (transient/persistent/thermal
  // draws stay incarnation-independent, keeping results bit-identical).
  const auto incarnation = static_cast<std::uint64_t>(committed.size());
  faulty_.set_incarnation(incarnation);

  // -- Canonical-order list of trials the checkpoint does not satisfy,
  // truncated to the stop-after budget: exactly the trials this run will
  // execute, in the order the sequencer commits them.
  std::vector<std::size_t> pending;
  pending.reserve(trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (committed.find(trials[i].key) == committed.end()) pending.push_back(i);
  }
  if (config_.stop_after_trials != 0 &&
      pending.size() > config_.stop_after_trials) {
    pending.resize(static_cast<std::size_t>(config_.stop_after_trials));
  }

  // -- Worker pool: each worker owns a private chip session and executes
  // whole trials; the reorder window keeps at most max(16, 2*jobs) finished
  // trials buffered ahead of the sequencer.
  const auto jobs =
      static_cast<std::size_t>(config_.jobs < 1 ? 1 : config_.jobs);
  const std::size_t window = std::max<std::size_t>(16, 2 * jobs);
  const bool journal_enabled = journal.enabled();
  OrderedShardPool<TrialOutcome> pool(pending.size(), jobs, window);

  std::mutex stats_mu;
  fault::FaultyChip::Stats worker_stats;
  pool.start([&](OrderedShardPool<TrialOutcome>& p) {
    TrialWorker worker(chip_.profile(), config_, incarnation,
                       journal_enabled);
    std::size_t k = 0;
    while (p.claim(k)) {
      TrialOutcome out;
      try {
        out = worker.run(trials[pending[k]],
                         static_cast<std::uint64_t>(pending[k]));
      } catch (...) {
        out.error = std::current_exception();
      }
      p.submit(k, std::move(out));
    }
    std::lock_guard lock(stats_mu);
    worker_stats.merge(worker.stats());
  });

  // Winds the pool down (normal completion or early abort) and folds the
  // worker sessions' fault statistics into the facade session, where
  // callers read them (campaign.session().stats()). After a fatal abort the
  // totals can include faults from in-flight trials whose outcomes were
  // discarded — same information a crashed physical campaign leaves behind.
  const auto finish = [&] {
    pool.abort();
    pool.join();
    std::lock_guard lock(stats_mu);
    faulty_.absorb_stats(worker_stats);
    worker_stats = {};
  };

  CampaignReport report;
  std::uint64_t processed = 0;
  std::size_t next_shard = 0;
  std::vector<std::string> row;
  row.reserve(2 + width);

  // -- Sequencer: walk the campaign in canonical order, committing each
  // trial's CSV row and journal buffer exactly as the serial loop did.
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto& trial = trials[i];
    if (auto it = committed.find(trial.key); it != committed.end()) {
      TrialRecord record;
      record.key = trial.key;
      record.status = it->second.status;
      record.cells = it->second.cells;
      ++report.resumed;
      report.records.push_back(std::move(record));
      continue;
    }
    if (next_shard >= pending.size()) {
      // The stop-after budget truncated `pending` exactly here.
      report.aborted = true;
      report.abort_reason = "stop-after-trials";
      journal.event("campaign-stop")
          .field("reason", report.abort_reason)
          .field("processed", processed);
      break;
    }
    ++processed;

    TrialOutcome out = pool.take(next_shard++);
    if (out.error) {
      journal.flush();
      if (csv) csv->flush();
      finish();
      std::rethrow_exception(out.error);
    }
    journal.append(out.journal);
    report.retries += out.retries;
    report.guard_blocks += out.guard_blocks;
    report.guard_wait_s += out.guard_wait_s;
    report.backoff_wait_s += out.backoff_wait_s;
    report.campaign_seconds += out.trial_s;
    accumulate(report.device_counters, out.device);

    if (out.fatal) {
      report.aborted = true;
      report.abort_reason = out.fatal_kind;
      journal.event("campaign-abort")
          .field("trial", trial.key)
          .field("reason", out.fatal_kind)
          .field("trial_s", out.trial_s, 1);
      journal.flush();
      if (csv) csv->flush();
      finish();
      return report;
    }

    // -- Commit: one CSV row per finished trial (ok or quarantined).
    if (out.record.status == TrialStatus::kQuarantined) {
      ++report.quarantined;
    } else {
      ++report.completed;
    }
    if (csv) {
      row.clear();
      row.emplace_back(out.record.key);
      row.emplace_back(to_string(out.record.status));
      row.insert(row.end(), out.record.cells.begin(), out.record.cells.end());
      row.resize(2 + width);  // quarantined rows: empty payload cells
      csv->row(row);
      csv->flush();
    }
    journal.flush();
    report.records.push_back(std::move(out.record));
  }

  finish();
  const auto& stats = faulty_.stats();
  journal.event("campaign-end")
      .field("completed", report.completed)
      .field("resumed", report.resumed)
      .field("quarantined", report.quarantined)
      .field("retries", report.retries)
      .field("faults_injected", stats.injected_total)
      .field("thermal_excursions", stats.thermal_excursions)
      .field("guard_blocks", report.guard_blocks)
      .field("guard_wait_s", report.guard_wait_s, 1)
      .field("backoff_wait_s", report.backoff_wait_s, 1)
      .field("campaign_s", report.campaign_seconds, 1);
  journal.flush();
  return report;
}

}  // namespace hbmrd::runner
