#include "runner/runner.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "fault/faulty_store.h"
#include "obs/instrumented_store.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "runner/checkpoint.h"
#include "runner/parallel.h"
#include "runner/worker.h"
#include "util/crc32c.h"
#include "util/csv.h"

namespace hbmrd::runner {

namespace {

struct CheckpointRow {
  TrialStatus status = TrialStatus::kOkResumed;
  std::vector<std::string> cells;
};

/// Everything the resume scan recovers before the campaign continues.
struct Recovery {
  std::unordered_map<std::string, CheckpointRow> committed;
  bool journal_has_begin = false;
  std::uint64_t incarnations = 0;
};

void accumulate(dram::BankCounters& into, const dram::BankCounters& delta) {
  into.activations += delta.activations;
  into.refresh_commands += delta.refresh_commands;
  into.defense_victim_refreshes += delta.defense_victim_refreshes;
  into.bitflips_materialized += delta.bitflips_materialized;
  into.bulk_hammer_windows += delta.bulk_hammer_windows;
  into.hammer_dedup_hits += delta.hammer_dedup_hits;
  into.dose_memo_evictions += delta.dose_memo_evictions;
  into.sense_word_ops += delta.sense_word_ops;
  into.sense_cells_visited += delta.sense_cells_visited;
}

/// Deterministic counter names pre-registered at campaign start, so every
/// snapshot carries the full catalog even when a count stays zero (the CI
/// smoke job diffs the key set). docs/OBSERVABILITY.md documents each.
constexpr const char* kDeterministicCatalog[] = {
    "campaign.trials",        "campaign.completed",
    "campaign.resumed",       "campaign.quarantined",
    "campaign.retries",       "campaign.guard_blocks",
    "campaign.aborts",        "recovery.corrupt_rows",
    "recovery.rolled_back_rows", "recovery.tail_truncations",
    "recovery.header_rebuilds",  "exec.acts",
    "exec.pres",              "exec.refs",
    "exec.hammer_windows",    "device.acts",
    "device.refs",            "device.victim_refreshes",
    "device.bitflips",        "device.hammer_windows",
    "device.dedup_hits",      "device.sense_word_ops",
    "device.sense_cells_visited", "cache.lookups",
    "cache.summary_hits",     "cache.summary_misses",
    "cache.summary_evictions",
    "study.hc_probes",        "study.hammers_replayed",
    "study.hammers_saved",    "faults.injected",
    "faults.thermal_excursions",
    "store.appends",          "store.append_bytes",
    "store.fsyncs",           "store.replaces",
    "store.reads",            "store.opens",
    "store.truncates",        "store.removes",
};

std::string hex32(std::uint32_t value) { return util::crc32c_hex(value); }

/// Scans checkpoint + journal + manifest, decides which trials are
/// committed, and atomically rewrites both artifacts down to exactly that
/// trusted state. The cross-check is an intersection: a trial counts as
/// committed only when its CRC-valid CSV row AND its terminal journal
/// event (trial-ok / quarantine) both survived — which is what keeps the
/// final artifacts byte-identical to an uninterrupted run no matter where
/// a crash tore them, in either direction. Throws CheckpointMismatchError
/// when the artifacts belong to a different campaign configuration.
Recovery recover(Store& store, const RunnerConfig& config,
                 const std::string& header_line, std::size_t disk_width,
                 const Manifest& expect, CampaignReport& report) {
  Recovery rec;
  const bool have_csv = !config.results_path.empty();
  const bool have_journal = !config.journal_path.empty();

  if (!have_csv) {
    // No checkpoint: nothing is committed. A pre-existing journal is cut
    // back to its begin line so the rerun cannot duplicate trial blocks.
    if (have_journal) {
      const auto js = scan_journal(store, config.journal_path);
      if (js.existed) {
        std::string keep;
        for (std::size_t i = 0; i < js.lines.size(); ++i) {
          if (js.events[i] == "campaign-begin") {
            keep = js.lines[i] + "\n";
            rec.journal_has_begin = true;
            break;
          }
        }
        store.atomic_replace(config.journal_path, keep);
      }
    }
    return rec;
  }

  // -- Manifest: does this checkpoint belong to this campaign? A corrupt
  // manifest parses to nullopt and is treated as missing, never trusted.
  std::optional<Manifest> manifest;
  if (const auto text = store.read(Manifest::path_for(config.results_path))) {
    manifest = Manifest::parse(*text);
  }
  if (manifest) {
    if (manifest->header_crc != expect.header_crc) {
      throw CheckpointMismatchError(
          "checkpoint mismatch in " + config.results_path +
          ": the manifest records a different result-column set (header "
          "digest " + hex32(manifest->header_crc) + ", this campaign " +
          hex32(expect.header_crc) +
          ")\nlikely cause: --resume points at a checkpoint from a "
          "different sweep (stale --results target); move the file aside "
          "or use a fresh --results path");
    }
    if (manifest->fault_seed != expect.fault_seed) {
      throw CheckpointMismatchError(
          "checkpoint mismatch in " + config.results_path +
          ": the manifest records fault seed " +
          std::to_string(manifest->fault_seed) + ", this run uses " +
          std::to_string(expect.fault_seed) +
          "; resuming would draw an inconsistent fault sequence\nlikely "
          "cause: --fault-seed changed between runs; pass --fault-seed " +
          std::to_string(manifest->fault_seed) +
          " or use a fresh --results path");
    }
    if (manifest->trial_count != expect.trial_count ||
        manifest->trials_crc != expect.trials_crc) {
      throw CheckpointMismatchError(
          "checkpoint mismatch in " + config.results_path +
          ": the manifest records " +
          std::to_string(manifest->trial_count) + " trials (list digest " +
          hex32(manifest->trials_crc) + "), this run supplies " +
          std::to_string(expect.trial_count) + " (digest " +
          hex32(expect.trials_crc) +
          "); the trial list must be identical across resumes\nlikely "
          "cause: sweep parameters changed since the checkpoint was "
          "written; use a fresh --results path");
    }
    rec.incarnations = manifest->incarnations;
  }

  auto cp = load_checkpoint(store, config.results_path, disk_width);
  if (cp.existed && cp.found_header != header_line) {
    if (manifest) {
      // The manifest vouches for this campaign's configuration, so the
      // damaged header is disk corruption: rebuild it from the config.
      report.checkpoint_header_rebuilt = true;
    } else {
      throw CheckpointMismatchError(
          "checkpoint mismatch in " + config.results_path +
          ": header does not match this campaign's columns\n  expected: " +
          header_line + "\n  found:    " + cp.found_header +
          "\nlikely cause: --resume points at a checkpoint from a "
          "different sweep (stale --results target); move the file aside "
          "or use a fresh --results path");
    }
  }
  report.checkpoint_corrupt_rows = cp.corrupt_rows;
  report.checkpoint_corrupt_keys = cp.corrupt_keys;
  report.checkpoint_tail_truncated = cp.tail_truncated;

  // -- Journal cross-check. A trial's terminal event flushes strictly
  // before its CSV row, but a power cut rolls each file back
  // independently, so either artifact can be ahead of the other; only the
  // intersection is safe to keep. The check applies only when the journal
  // file exists — absent means the campaign never journaled (a config
  // choice, not data loss).
  JournalScan js;
  bool cross_check = false;
  std::unordered_set<std::string> complete;
  if (have_journal) {
    js = scan_journal(store, config.journal_path);
    cross_check = js.existed;
    for (std::size_t i = 0; i < js.lines.size(); ++i) {
      if (js.events[i] == "trial-ok" || js.events[i] == "quarantine") {
        complete.insert(js.keys[i]);
      }
    }
  }

  std::vector<std::string> keep_lines;
  for (std::size_t i = 0; i < cp.lines.size(); ++i) {
    const auto& key = cp.keys[i];
    if (cross_check && complete.find(key) == complete.end()) {
      ++report.checkpoint_rolled_back;
      continue;
    }
    const auto cells = util::split_csv_line(cp.lines[i]);
    CheckpointRow row;
    row.status = cells[1] == "quarantined" ? TrialStatus::kQuarantined
                                           : TrialStatus::kOkResumed;
    row.cells.assign(cells.begin() + 2, cells.end() - 1);
    if (!rec.committed.emplace(key, std::move(row)).second) continue;
    keep_lines.push_back(cp.lines[i]);
  }

  // -- Atomic rewrite: exactly the trusted state — torn tails, corrupt
  // rows, rolled-back records and superseded control events all vanish in
  // one rename each; a crash mid-rewrite leaves the previous file intact.
  std::string csv_content = header_line + "\n";
  for (const auto& line : keep_lines) {
    csv_content += line;
    csv_content += '\n';
  }
  store.atomic_replace(config.results_path, csv_content);

  if (have_journal && js.existed) {
    std::string journal_content;
    for (std::size_t i = 0; i < js.lines.size(); ++i) {
      if (js.events[i] == "campaign-begin") {
        if (rec.journal_has_begin) continue;  // keep the first only
        rec.journal_has_begin = true;
      } else if (js.keys[i].empty() ||
                 rec.committed.find(js.keys[i]) == rec.committed.end()) {
        // Campaign-level control lines (stop/abort/end, checkpoint
        // quarantines) are superseded by this resume; keyed lines without
        // a committed row belong to trials that will rerun.
        continue;
      }
      journal_content += js.lines[i];
      journal_content += '\n';
    }
    store.atomic_replace(config.journal_path, journal_content);
  }
  return rec;
}

}  // namespace

const char* to_string(TrialStatus status) {
  switch (status) {
    case TrialStatus::kOk: return "ok";
    case TrialStatus::kOkResumed: return "ok";  // same on-disk status
    case TrialStatus::kQuarantined: return "quarantined";
    case TrialStatus::kNotRun: return "not-run";
  }
  return "unknown";
}

double CampaignReport::completion_rate() const {
  const auto attempted = completed + resumed + quarantined;
  if (attempted == 0) return 1.0;
  return static_cast<double>(completed + resumed) /
         static_cast<double>(attempted);
}

std::vector<std::string> CampaignReport::quarantined_keys() const {
  std::vector<std::string> keys;
  for (const auto& record : records) {
    if (record.status == TrialStatus::kQuarantined) keys.push_back(record.key);
  }
  return keys;
}

CampaignRunner::CampaignRunner(bender::HbmChip& chip, RunnerConfig config)
    : chip_(chip),
      config_(std::move(config)),
      faulty_(chip, fault::FaultPlan(config_.faults)) {}

double CampaignRunner::setpoint_c() const {
  const auto& profile = chip_.profile();
  return profile.temperature_controlled ? profile.target_temperature_c
                                        : profile.ambient_temperature_c;
}

double CampaignRunner::band_c() const {
  if (config_.guard.band_c > 0.0) return config_.guard.band_c;
  return chip_.profile().temperature_controlled ? 1.0 : 3.0;
}

CampaignReport CampaignRunner::run(const std::vector<Trial>& trials) {
  const auto width = config_.result_columns.size();
  std::vector<std::string> header = {"trial", "status"};
  header.insert(header.end(), config_.result_columns.begin(),
                config_.result_columns.end());
  for (const auto& trial : trials) validate_csv_cell(trial.key, "trial key");

  // The header as it sits on disk: the CRC trailer column is part of the
  // checkpoint format (the header row itself carries no trailer).
  auto header_cells = header;
  header_cells.emplace_back(util::CsvWriter::kCrcColumn);
  const auto header_line = util::CsvWriter::serialize(header_cells);
  const auto disk_width = header_cells.size();

  // Every byte of campaign state goes through one Store, so the whole
  // persistence path can be crash-tested through fault::FaultyStore.
  auto store = config_.store ? config_.store : util::default_store();
  if (config_.faults.store.any()) {
    store = std::make_shared<fault::FaultyStore>(store, config_.faults.seed,
                                                 config_.faults.store);
  }
  obs::MetricsRegistry* metrics = config_.metrics;
  if (metrics != nullptr) {
    // Instrument OUTSIDE the fault injector: injected failures still count
    // as attempted operations. All store I/O runs on this (sequencer)
    // thread in a jobs-independent sequence, so store.* counters are
    // deterministic.
    store = std::make_shared<obs::InstrumentedStore>(store, metrics);
    for (const char* name : kDeterministicCatalog) metrics->add(name, 0);
    metrics->add("campaign.trials",
                 static_cast<std::uint64_t>(trials.size()));
  }
  obs::SpanTimer campaign_span(config_.trace, "campaign");

  // Campaign identity: what the manifest must match for --resume.
  Manifest expect;
  expect.header_crc = util::crc32c(header_line);
  expect.fault_seed = config_.faults.seed;
  expect.trial_count = trials.size();
  {
    std::string keys;
    for (const auto& trial : trials) {
      keys += trial.key;
      keys += '\n';
    }
    expect.trials_crc = util::crc32c(keys);
  }

  CampaignReport report;
  Recovery rec;
  const bool have_csv = !config_.results_path.empty();
  if (config_.resume) {
    obs::SpanTimer recover_span(config_.trace, "campaign/recover");
    rec = recover(*store, config_, header_line, disk_width, expect, report);
  }
  const auto& committed = rec.committed;
  if (metrics != nullptr) {
    metrics->add("recovery.corrupt_rows", report.checkpoint_corrupt_rows);
    metrics->add("recovery.rolled_back_rows", report.checkpoint_rolled_back);
    metrics->add("recovery.tail_truncations",
                 report.checkpoint_tail_truncated ? 1 : 0);
    metrics->add("recovery.header_rebuilds",
                 report.checkpoint_header_rebuilt ? 1 : 0);
  }

  if (have_csv) {
    Manifest manifest = expect;
    manifest.incarnations = rec.incarnations + 1;
    store->atomic_replace(Manifest::path_for(config_.results_path),
                          manifest.serialize());
  }

  std::unique_ptr<util::CsvWriter> csv;
  if (have_csv) {
    util::CsvWriter::Options options;
    options.mode = config_.resume ? util::CsvWriter::Mode::kAppend
                                  : util::CsvWriter::Mode::kTruncate;
    options.row_crc = true;
    options.store = store;
    csv = std::make_unique<util::CsvWriter>(config_.results_path, header,
                                            options);
  }

  Journal journal(config_.journal_path, config_.resume, store);
  const auto& faults = config_.faults;
  if (!rec.journal_has_begin) {
    // Written at most once per campaign artifact: resumes keep the
    // original begin line, so a finished journal is a pure function of
    // (trials, plan, config) — independent of how often it crashed.
    journal.event("campaign-begin")
        .field("trials", static_cast<std::uint64_t>(trials.size()))
        .field("committed", static_cast<std::uint64_t>(committed.size()))
        .field("seed", faults.seed)
        .field("transient_rate", faults.transient_rate, 4)
        .field("thermal_rate", faults.thermal_rate, 4)
        .field("persistent_rate", faults.persistent_rate, 4)
        .field("fatal_rate", faults.fatal_rate, 4)
        .field("setpoint_c", setpoint_c(), 1)
        .field("band_c", band_c(), 2);
  }
  // Surface recovery findings before the campaign continues; these are
  // campaign-level lines ("key", not "trial") and a later resume drops
  // them along with the other superseded control events.
  for (const auto& key : report.checkpoint_corrupt_keys) {
    journal.event("checkpoint-quarantine")
        .field("key", key)
        .field("reason", "crc-mismatch");
  }
  journal.flush();

  // Campaign incarnation: how many rows were already committed when this
  // run started. Keys the fatal-fault draw so a crash does not deadlock
  // the resumed campaign on the same trial (transient/persistent/thermal
  // draws stay incarnation-independent, keeping results bit-identical).
  const auto incarnation = static_cast<std::uint64_t>(committed.size());
  faulty_.set_incarnation(incarnation);

  // -- Shard mode: restrict the sequencer to the worker's global index
  // range. Everything else — fault-plan keys, journal bytes, CSV rows — is
  // computed exactly as the unsharded campaign computes it, which is what
  // makes the supervisor's merge byte-identical by construction.
  const bool shard_mode = config_.shard.enabled;
  const auto range_begin =
      shard_mode ? std::min<std::size_t>(config_.shard.lo, trials.size())
                 : std::size_t{0};
  const auto range_end =
      shard_mode ? std::min<std::size_t>(config_.shard.hi, trials.size())
                 : trials.size();
  HeartbeatEmitter heartbeat(shard_mode ? config_.shard.heartbeat_fd : -1);
  heartbeat.hello();
  // Injected worker-process faults fire only in shard mode and only while
  // the shard's restart count is below the repeat gate — the restarted
  // incarnation recovers, exactly like the fatal-fault incarnation key.
  const auto& worker_faults = config_.faults.worker;
  const bool worker_faults_armed =
      shard_mode && worker_faults.any() &&
      config_.shard.incarnation < worker_faults.repeat_incarnations;
  // A muted heartbeat emulates a wedged reporting path: the worker keeps
  // committing but the supervisor goes blind and must watchdog-kill it, so
  // instead of exiting cleanly the worker wedges at its exit point.
  bool heartbeat_muted = false;
  const auto wedge_forever = [] {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  };

  // -- Canonical-order list of trials the checkpoint does not satisfy,
  // truncated to the stop-after budget: exactly the trials this run will
  // execute, in the order the sequencer commits them.
  std::vector<std::size_t> pending;
  pending.reserve(range_end - range_begin);
  for (std::size_t i = range_begin; i < range_end; ++i) {
    if (committed.find(trials[i].key) == committed.end()) pending.push_back(i);
  }
  if (config_.stop_after_trials != 0 &&
      pending.size() > config_.stop_after_trials) {
    pending.resize(static_cast<std::size_t>(config_.stop_after_trials));
  }

  // -- Worker pool: each worker owns a private chip session and executes
  // whole trials; the reorder window keeps at most max(16, 2*jobs) finished
  // trials buffered ahead of the sequencer. All store I/O stays on this
  // thread, so the write/fsync operation sequence — and with it every
  // injected storage fault — is identical for any --jobs value.
  const auto jobs =
      static_cast<std::size_t>(config_.jobs < 1 ? 1 : config_.jobs);
  const std::size_t window = std::max<std::size_t>(16, 2 * jobs);
  const bool journal_enabled = journal.enabled();
  OrderedShardPool<TrialOutcome> pool(pending.size(), jobs, window);

  std::mutex stats_mu;
  fault::FaultyChip::Stats worker_stats;
  pool.start([&](OrderedShardPool<TrialOutcome>& p) {
    TrialWorker worker(chip_.profile(), config_, incarnation,
                       journal_enabled);
    std::size_t k = 0;
    while (p.claim(k)) {
      TrialOutcome out;
      try {
        out = worker.run(trials[pending[k]],
                         static_cast<std::uint64_t>(pending[k]));
      } catch (...) {
        out.error = std::current_exception();
      }
      p.submit(k, std::move(out));
    }
    std::lock_guard lock(stats_mu);
    worker_stats.merge(worker.stats());
  });

  // Winds the pool down (normal completion or early abort) and folds the
  // worker sessions' fault statistics into the facade session, where
  // callers read them (campaign.session().stats()). After a fatal abort the
  // totals can include faults from in-flight trials whose outcomes were
  // discarded — same information a crashed physical campaign leaves behind.
  const auto finish = [&] {
    pool.abort();
    pool.join();
    std::lock_guard lock(stats_mu);
    faulty_.absorb_stats(worker_stats);
    worker_stats = {};
  };

  // Durable mode: batched fsync at trial-commit boundaries, journal first —
  // a CSV row that survives power loss implies its journal block does too.
  std::uint64_t commits_since_sync = 0;
  const auto make_durable = [&] {
    if (config_.fsync_every_trials == 0) return;
    journal.durable();
    if (csv) csv->durable();
    commits_since_sync = 0;
  };

  std::uint64_t processed = 0;
  std::size_t next_shard = 0;
  std::vector<std::string> row;
  row.reserve(2 + width);

  obs::ProgressReporter* progress = config_.progress;
  if (progress != nullptr) {
    progress->set_total(static_cast<std::uint64_t>(trials.size()));
  }
  const auto report_progress = [&] {
    if (progress == nullptr) return;
    progress->update(report.completed + report.resumed + report.quarantined,
                     report.device_counters.bitflips_materialized,
                     report.retries);
  };
  // Folds one committed (or fatally aborted) trial's deltas into the
  // registry. Runs on the sequencer thread in canonical trial order, which
  // is what makes every kDeterministic counter byte-equal across --jobs N:
  // each delta is a pure function of (profile, trial index, fault plan,
  // incarnation), and the accumulation order is the canonical one.
  const auto meter_trial = [&](const TrialOutcome& out) {
    if (config_.trace != nullptr) {
      config_.trace->record("campaign/trial", out.wall_s);
    }
    if (metrics == nullptr) return;
    metrics->add("campaign.retries", out.retries);
    metrics->add("campaign.guard_blocks", out.guard_blocks);
    metrics->add("exec.acts", out.exec.acts);
    metrics->add("exec.pres", out.exec.pres);
    metrics->add("exec.refs", out.exec.refs);
    metrics->add("exec.hammer_windows", out.exec.bulk_hammer_windows);
    metrics->add("device.acts", out.device.activations);
    metrics->add("device.refs", out.device.refresh_commands);
    metrics->add("device.victim_refreshes",
                 out.device.defense_victim_refreshes);
    metrics->add("device.bitflips", out.device.bitflips_materialized);
    metrics->add("device.hammer_windows", out.device.bulk_hammer_windows);
    metrics->add("device.dedup_hits", out.device.hammer_dedup_hits);
    // Deterministic per scan mode: path selection inside a sense is a pure
    // function of device state, never of scheduling.
    metrics->add("device.sense_word_ops", out.device.sense_word_ops);
    metrics->add("device.sense_cells_visited",
                 out.device.sense_cells_visited);
    // Ring evictions depend on dose-class visit order within the scan
    // mode: telemetry, excluded from the fingerprint.
    metrics->add("device.dose_memo_evictions",
                 out.device.dose_memo_evictions,
                 obs::MetricKind::kTelemetry);
    metrics->add("cache.lookups", out.cache.lookups());
    // Epoch-relative summary counters: pure functions of the trial body
    // (the worker power-cycles at trial start, opening a fresh epoch), so
    // they stay in the deterministic fingerprint unlike the raw split.
    metrics->add("cache.summary_hits", out.cache.summary_hits);
    metrics->add("cache.summary_misses", out.cache.summary_misses);
    metrics->add("cache.summary_evictions", out.cache.summary_evictions);
    metrics->add("study.hc_probes", out.probes.hc_probes);
    metrics->add("study.hammers_replayed", out.probes.hammers_replayed);
    metrics->add("study.hammers_saved", out.probes.hammers_saved);
    // The hit/miss/build/eviction split depends on which worker's cache
    // served the trial: telemetry, excluded from the fingerprint.
    metrics->add("cache.hits", out.cache.hits, obs::MetricKind::kTelemetry);
    metrics->add("cache.misses", out.cache.misses,
                 obs::MetricKind::kTelemetry);
    metrics->add("cache.builds", out.cache.builds,
                 obs::MetricKind::kTelemetry);
    metrics->add("cache.evictions", out.cache.evictions,
                 obs::MetricKind::kTelemetry);
    metrics->add("faults.injected", out.fault_delta.injected_total);
    metrics->add("faults.thermal_excursions",
                 out.fault_delta.thermal_excursions);
    metrics->observe("trial.wall_s", out.wall_s);
  };
  // Run-level gauges (telemetry): simulated totals plus the wall clock.
  const auto finish_observability = [&] {
    campaign_span.stop();
    if (metrics != nullptr) {
      metrics->add("campaign.completed", 0);  // ensure key exists
      metrics->set_gauge("campaign.sim_seconds", report.campaign_seconds);
      metrics->set_gauge("campaign.guard_wait_s", report.guard_wait_s);
      metrics->set_gauge("campaign.backoff_wait_s", report.backoff_wait_s);
      if (config_.trace != nullptr) {
        metrics->set_gauge("campaign.wall_s",
                           config_.trace->span("campaign").total_s);
      }
    }
    if (progress != nullptr) progress->finish();
  };

  // -- Sequencer: walk the campaign in canonical order, committing each
  // trial's journal block and CSV row exactly as the serial loop did.
  for (std::size_t i = range_begin; i < range_end; ++i) {
    // The global 1-based trial number the worker-fault schedule keys on.
    const auto trial_no = static_cast<std::uint64_t>(i) + 1;
    if (worker_faults_armed &&
        worker_faults.drop_heartbeats_after != 0 &&
        trial_no > worker_faults.drop_heartbeats_after) {
      heartbeat_muted = true;
    }
    if (graceful_stop_requested()) {
      // Operator SIGTERM/SIGINT (or a supervisor reclaiming the shard):
      // stop at this commit boundary with the artifacts flushed — the
      // resume then reproduces the uninterrupted bytes, no repair needed.
      report.aborted = true;
      report.abort_reason = "signal";
      journal.event("campaign-stop")
          .field("reason", report.abort_reason)
          .field("processed", processed);
      break;
    }
    const auto& trial = trials[i];
    if (auto it = committed.find(trial.key); it != committed.end()) {
      TrialRecord record;
      record.key = trial.key;
      record.status = it->second.status;
      record.cells = it->second.cells;
      ++report.resumed;
      if (metrics != nullptr) metrics->add("campaign.resumed", 1);
      report_progress();
      report.records.push_back(std::move(record));
      // Re-beat resumed trials: the supervisor's progress count per
      // incarnation is then simply "committed rows in range".
      if (!heartbeat_muted) heartbeat.progress(static_cast<std::uint64_t>(i));
      continue;
    }
    if (worker_faults_armed && worker_faults.hang_at_trial == trial_no) {
      wedge_forever();
    }
    if (next_shard >= pending.size()) {
      // The stop-after budget truncated `pending` exactly here.
      report.aborted = true;
      report.abort_reason = "stop-after-trials";
      journal.event("campaign-stop")
          .field("reason", report.abort_reason)
          .field("processed", processed);
      break;
    }
    ++processed;

    TrialOutcome out = pool.take(next_shard++);
    if (out.error) {
      journal.flush();
      if (csv) csv->flush();
      finish();
      std::rethrow_exception(out.error);
    }
    journal.append(out.journal);
    report.retries += out.retries;
    report.guard_blocks += out.guard_blocks;
    report.guard_wait_s += out.guard_wait_s;
    report.backoff_wait_s += out.backoff_wait_s;
    report.campaign_seconds += out.trial_s;
    accumulate(report.device_counters, out.device);
    meter_trial(out);

    if (out.fatal) {
      report.aborted = true;
      report.abort_reason = out.fatal_kind;
      journal.event("campaign-abort")
          .field("trial", trial.key)
          .field("reason", out.fatal_kind)
          .field("trial_s", out.trial_s, 1);
      journal.flush();
      if (csv) csv->flush();
      make_durable();
      finish();
      if (metrics != nullptr) metrics->add("campaign.aborts", 1);
      finish_observability();
      return report;
    }

    // -- Commit: the trial's journal block lands strictly before its CSV
    // row (write-ahead discipline; recovery's cross-check depends on it).
    if (out.record.status == TrialStatus::kQuarantined) {
      ++report.quarantined;
      if (metrics != nullptr) metrics->add("campaign.quarantined", 1);
    } else {
      ++report.completed;
      if (metrics != nullptr) metrics->add("campaign.completed", 1);
    }
    {
      obs::SpanTimer commit_span(config_.trace, "campaign/commit");
      journal.flush();
      if (worker_faults_armed && worker_faults.crash_at_trial == trial_no) {
        // The nastiest crash point the write-ahead discipline allows: the
        // trial's journal block is in the OS buffer, its CSV row is not.
        // Recovery's intersection drops the orphan block and reruns the
        // trial, byte-identically. SIGKILL: no unwind, no flush.
        std::raise(SIGKILL);
      }
      if (csv) {
        row.clear();
        row.emplace_back(out.record.key);
        row.emplace_back(to_string(out.record.status));
        row.insert(row.end(), out.record.cells.begin(),
                   out.record.cells.end());
        row.resize(2 + width);  // quarantined rows: empty payload cells
        csv->row(row);
        csv->flush();
      }
      if (++commits_since_sync >= config_.fsync_every_trials &&
          config_.fsync_every_trials != 0) {
        make_durable();
      }
    }
    if (!heartbeat_muted) heartbeat.progress(static_cast<std::uint64_t>(i));
    report_progress();
    report.records.push_back(std::move(out.record));
  }

  finish();
  // The end event carries only campaign-state totals, never run-local
  // telemetry (retries, waits, this run's fault counts): those depend on
  // how often the campaign crashed and resumed, and the journal must be a
  // pure function of (trials, plan, config). Per-trial telemetry is in the
  // trial blocks; run-local summaries go to the CampaignReport.
  std::uint64_t ok_total = 0, quarantined_total = 0;
  for (const auto& record : report.records) {
    if (record.status == TrialStatus::kQuarantined) {
      ++quarantined_total;
    } else {
      ++ok_total;
    }
  }
  journal.event("campaign-end")
      .field("trials", static_cast<std::uint64_t>(trials.size()))
      .field("completed", ok_total)
      .field("quarantined", quarantined_total);
  journal.flush();
  make_durable();
  if (metrics != nullptr && report.aborted) metrics->add("campaign.aborts", 1);
  finish_observability();
  // A worker whose heartbeat path wedged never reports completion either —
  // the watchdog must reap it; its committed rows survive for the handoff.
  if (heartbeat_muted) wedge_forever();
  if (!report.aborted) heartbeat.done();
  return report;
}

}  // namespace hbmrd::runner
