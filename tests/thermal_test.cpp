#include "thermal/rig.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hbmrd::thermal {
namespace {

TEST(ThermalPlant, RelaxesTowardEquilibrium) {
  PlantParams params;
  params.sensor_noise_c = 0.0;
  params.diurnal_swing_c = 0.0;
  ThermalPlant plant(params, 1, 20.0);
  // With no actuation the plant approaches ambient.
  for (int i = 0; i < 3600; ++i) plant.step(1.0, 0.0, 0.0);
  EXPECT_NEAR(plant.true_c(), params.ambient_c, 0.1);
  // Full pad power raises the equilibrium by pad_heating_c.
  for (int i = 0; i < 3600; ++i) plant.step(1.0, 1.0, 0.0);
  EXPECT_NEAR(plant.true_c(), params.ambient_c + params.pad_heating_c, 0.1);
  // Full fan lowers it below ambient.
  for (int i = 0; i < 3600; ++i) plant.step(1.0, 0.0, 1.0);
  EXPECT_NEAR(plant.true_c(), params.ambient_c - params.fan_cooling_c, 0.1);
}

TEST(ThermalPlant, LargeStepIsStable) {
  PlantParams params;
  params.sensor_noise_c = 0.0;
  ThermalPlant plant(params, 1, 20.0);
  plant.step(1e6, 0.0, 0.0);  // exact exponential step: no overshoot
  EXPECT_NEAR(plant.true_c(), params.ambient_c, 1.5);
  EXPECT_THROW(plant.step(-1.0, 0, 0), std::invalid_argument);
}

TEST(ThermalPlant, SensorNoiseIsBoundedAndDeterministic) {
  PlantParams params;
  params.sensor_noise_c = 0.15;
  ThermalPlant a(params, 7, 50.0);
  ThermalPlant b(params, 7, 50.0);
  for (int i = 0; i < 100; ++i) {
    const double sa = a.sensor_c();
    EXPECT_EQ(sa, b.sensor_c());
    EXPECT_NEAR(sa, 50.0, 1.5);
  }
}

TEST(BangBang, HysteresisSwitching) {
  BangBangController controller(82.0, 0.5);
  // Below the band: heat.
  auto act = controller.update(80.0);
  EXPECT_EQ(act.pad_duty, 1.0);
  EXPECT_EQ(act.fan_duty, 0.0);
  // Inside the band: keep the previous mode.
  act = controller.update(82.2);
  EXPECT_EQ(act.pad_duty, 1.0);
  // Above the band: cool.
  act = controller.update(82.8);
  EXPECT_EQ(act.pad_duty, 0.0);
  EXPECT_EQ(act.fan_duty, 1.0);
  // Back inside the band: stays cooling.
  act = controller.update(81.8);
  EXPECT_EQ(act.fan_duty, 1.0);
}

TEST(TemperatureRig, ControlledRigTracksTarget) {
  auto rig = TemperatureRig::controlled(99, 82.0);
  rig.advance(3600.0);  // warm-up
  EXPECT_TRUE(rig.is_controlled());
  // Sampled over an hour, the temperature stays within a tight band of the
  // setpoint (Fig. 3: Chip 0 pinned at 82 C).
  double min = 1e9;
  double max = -1e9;
  for (int i = 0; i < 720; ++i) {
    rig.advance(5.0);
    const double t = rig.temperature_c();
    min = std::min(min, t);
    max = std::max(max, t);
  }
  EXPECT_GT(min, 79.0);
  EXPECT_LT(max, 85.0);
}

TEST(TemperatureRig, AmbientRigIsStable) {
  auto rig = TemperatureRig::ambient(42, 55.0);
  EXPECT_FALSE(rig.is_controlled());
  double min = 1e9;
  double max = -1e9;
  for (int i = 0; i < 1000; ++i) {
    rig.advance(5.0);
    const double t = rig.temperature_c();
    min = std::min(min, t);
    max = std::max(max, t);
  }
  // Fig. 3: uncontrolled chips sit at a stable ambient with small drift.
  EXPECT_GT(min, 52.0);
  EXPECT_LT(max, 58.0);
}

}  // namespace
}  // namespace hbmrd::thermal
