#include "dram/geometry.h"

#include <gtest/gtest.h>

namespace hbmrd::dram {
namespace {

TEST(Geometry, PaperConfiguration) {
  // Sec. 3: 8 channels, 2 pseudo channels, 16 banks, 16384 rows, 1 KB rows.
  EXPECT_EQ(kChannels, 8);
  EXPECT_EQ(kPseudoChannels, 2);
  EXPECT_EQ(kBanksPerPseudoChannel, 16);
  EXPECT_EQ(kRowsPerBank, 16384);
  EXPECT_EQ(kRowBits, 8192);
  // Stack density: 4 GiB.
  const long long bits = 8LL * 2 * 16 * 16384 * 8192;
  EXPECT_EQ(bits, 4LL * 1024 * 1024 * 1024 * 8);
}

TEST(Geometry, DieGrouping) {
  EXPECT_EQ(die_of_channel(0), 0);
  EXPECT_EQ(die_of_channel(1), 0);
  EXPECT_EQ(die_of_channel(2), 1);
  EXPECT_EQ(die_of_channel(7), 3);
}

TEST(Geometry, ValidateRejectsOutOfRange) {
  EXPECT_NO_THROW(validate(BankAddress{7, 1, 15}));
  EXPECT_THROW(validate(BankAddress{8, 0, 0}), std::out_of_range);
  EXPECT_THROW(validate(BankAddress{0, 2, 0}), std::out_of_range);
  EXPECT_THROW(validate(BankAddress{0, 0, 16}), std::out_of_range);
  EXPECT_THROW(validate(BankAddress{-1, 0, 0}), std::out_of_range);
  EXPECT_THROW(validate(RowAddress{{0, 0, 0}, 16384}), std::out_of_range);
  EXPECT_THROW(validate(RowAddress{{0, 0, 0}, -1}), std::out_of_range);
  EXPECT_NO_THROW(validate(RowAddress{{0, 0, 0}, 16383}));
}

TEST(Subarrays, SizesCoverTheBank) {
  int total = 0;
  int large = 0;
  for (int s = 0; s < kSubarrays; ++s) {
    const int size = subarray_size(s);
    EXPECT_TRUE(size == kSubarraySizeLarge || size == kSubarraySizeSmall);
    if (size == kSubarraySizeLarge) ++large;
    total += size;
  }
  EXPECT_EQ(total, kRowsPerBank);
  EXPECT_EQ(large, 4);  // 4 x 832 + 17 x 768 = 16384
}

TEST(Subarrays, MiddleAndLastAreResilient832Rows) {
  // Obsv. 15: the middle and last 832 rows are the resilient subarrays.
  EXPECT_EQ(subarray_size(kMiddleSubarray), 832);
  EXPECT_EQ(subarray_size(kLastSubarray), 832);
  EXPECT_TRUE(is_resilient_subarray(kMiddleSubarray));
  EXPECT_TRUE(is_resilient_subarray(kLastSubarray));
  EXPECT_FALSE(is_resilient_subarray(0));
  // The middle subarray straddles the bank's midpoint.
  const int mid_start = subarray_start(kMiddleSubarray);
  EXPECT_LE(mid_start, kRowsPerBank / 2);
  EXPECT_GT(mid_start + subarray_size(kMiddleSubarray), kRowsPerBank / 2);
  // The last subarray ends the bank.
  EXPECT_EQ(subarray_start(kLastSubarray) + subarray_size(kLastSubarray),
            kRowsPerBank);
}

TEST(Subarrays, RowLookupsAreConsistent) {
  for (int s = 0; s < kSubarrays; ++s) {
    const int start = subarray_start(s);
    EXPECT_EQ(subarray_of_row(start), s);
    EXPECT_EQ(position_in_subarray(start), 0);
    const int end = start + subarray_size(s) - 1;
    EXPECT_EQ(subarray_of_row(end), s);
    EXPECT_EQ(position_in_subarray(end), subarray_size(s) - 1);
  }
  EXPECT_EQ(subarray_of_row(kRowsPerBank - 1), kSubarrays - 1);
}

TEST(Subarrays, SameSubarrayAtBoundaries) {
  const int boundary = subarray_start(1);
  EXPECT_FALSE(same_subarray(boundary - 1, boundary));
  EXPECT_TRUE(same_subarray(boundary, boundary + 1));
  EXPECT_TRUE(same_subarray(0, subarray_size(0) - 1));
}

}  // namespace
}  // namespace hbmrd::dram
