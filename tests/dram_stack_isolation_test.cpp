// Isolation properties across the stack's hierarchy: commands to one
// component never leak observable state into another — the substrate
// behind the paper's per-channel/per-pseudo-channel variation claims.
#include <gtest/gtest.h>

#include <array>

#include "bender/executor.h"
#include "bender/program.h"

namespace hbmrd::dram {
namespace {

StackConfig test_config() {
  StackConfig config;
  config.disturb.seed = 0x150ull;
  return config;
}

struct IsolationFixture : ::testing::Test {
  Stack stack{test_config()};
  bender::Executor executor{&stack};

  void write(const BankAddress& bank, int row, std::uint8_t byte) {
    bender::ProgramBuilder builder;
    builder.write_row(bank, row, RowBits::filled(byte));
    executor.run(std::move(builder).build());
  }

  RowBits read(const BankAddress& bank, int row) {
    bender::ProgramBuilder builder;
    builder.read_row(bank, row);
    return executor.run(std::move(builder).build()).row(0);
  }

  void hammer(const BankAddress& bank, int victim, std::uint64_t count) {
    bender::ProgramBuilder builder;
    const std::array<int, 2> rows = {victim - 1, victim + 1};
    builder.hammer(bank, rows, count);
    executor.run(std::move(builder).build());
  }
};

TEST_F(IsolationFixture, HammerDoesNotCrossPseudoChannels) {
  const BankAddress a{0, 0, 0};
  const BankAddress b{0, 1, 0};  // same channel + bank id, other pc
  write(a, 4300, 0x55);
  write(b, 4300, 0x55);
  write(a, 4299, 0xAA);
  write(a, 4301, 0xAA);
  hammer(a, 4300, 2'000'000);
  EXPECT_GT(read(a, 4300).count_diff(RowBits::filled(0x55)), 0);
  EXPECT_EQ(read(b, 4300).count_diff(RowBits::filled(0x55)), 0);
}

TEST_F(IsolationFixture, HammerDoesNotCrossBanks) {
  const BankAddress a{0, 0, 3};
  const BankAddress b{0, 0, 4};
  write(a, 4300, 0x55);
  write(b, 4300, 0x55);
  write(a, 4299, 0xAA);
  write(a, 4301, 0xAA);
  hammer(a, 4300, 2'000'000);
  EXPECT_GT(read(a, 4300).count_diff(RowBits::filled(0x55)), 0);
  EXPECT_EQ(read(b, 4300).count_diff(RowBits::filled(0x55)), 0);
}

TEST_F(IsolationFixture, RefreshIsPerChannel) {
  // A REF to channel 0 advances channel 0's refresh pointers only.
  bender::ProgramBuilder builder;
  builder.ref(0);
  executor.run(std::move(builder).build());
  EXPECT_GT(stack.bank({0, 0, 0}).refresh_pointer(), 0);
  EXPECT_GT(stack.bank({0, 1, 15}).refresh_pointer(), 0);
  EXPECT_EQ(stack.bank({1, 0, 0}).refresh_pointer(), 0);
  EXPECT_EQ(stack.bank({7, 1, 15}).refresh_pointer(), 0);
}

TEST_F(IsolationFixture, OpenRowsAreIndependentAcrossBanks) {
  bender::ProgramBuilder builder;
  builder.act({0, 0, 0}, 10).act({0, 0, 1}, 20).act({3, 1, 7}, 30);
  executor.run(std::move(builder).build());
  EXPECT_EQ(stack.bank({0, 0, 0}).open_row(), 10);
  EXPECT_EQ(stack.bank({0, 0, 1}).open_row(), 20);
  EXPECT_EQ(stack.bank({3, 1, 7}).open_row(), 30);
  EXPECT_FALSE(stack.bank({0, 1, 0}).is_open());
}

TEST_F(IsolationFixture, SameCoordinatesDifferentBanksDifferentSilicon) {
  // Power-on contents (and therefore thresholds) differ per bank.
  EXPECT_NE(read({0, 0, 0}, 77), read({0, 0, 1}, 77));
  EXPECT_NE(read({0, 0, 0}, 77), read({0, 1, 0}, 77));
  EXPECT_NE(read({0, 0, 0}, 77), read({4, 0, 0}, 77));
}

TEST_F(IsolationFixture, PendingWritesLandOnlyInTheAddressedColumn) {
  const BankAddress bank{2, 0, 5};
  write(bank, 100, 0x00);
  bender::ProgramBuilder builder;
  builder.act(bank, 100);
  bender::ColumnData data;
  data.fill(~0ull);
  builder.wr(bank, 7, data);
  builder.pre(bank);
  executor.run(std::move(builder).build());
  const auto bits = read(bank, 100);
  for (int bit = 0; bit < kRowBits; ++bit) {
    const bool in_column = bit / kBitsPerColumn == 7;
    EXPECT_EQ(bits.get(bit), in_column) << "bit " << bit;
  }
}

}  // namespace
}  // namespace hbmrd::dram
