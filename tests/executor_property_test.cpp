// Property tests over the host/device command surface: randomized *legal*
// programs always execute (no timing violations, monotone clock, readback
// consistency), and a sweep of *illegal* sequences always throws. The
// generator draws from a seeded deterministic stream, so failures
// reproduce exactly.
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "bender/executor.h"
#include "bender/program.h"
#include "util/rng.h"

namespace hbmrd::bender {
namespace {

dram::StackConfig test_config(std::uint64_t seed) {
  dram::StackConfig config;
  config.disturb.seed = seed;
  return config;
}

/// Generates a random but protocol-legal program: rows are written, read,
/// hammered, refreshed in arbitrary interleavings across a few banks.
/// Returns the expected final contents of every written row.
std::map<std::pair<int, int>, dram::RowBits> random_legal_program(
    util::Stream& rng, ProgramBuilder& builder, int operations) {
  const std::array<dram::BankAddress, 3> banks = {
      dram::BankAddress{0, 0, 0}, dram::BankAddress{0, 1, 3},
      dram::BankAddress{5, 0, 9}};
  std::map<std::pair<int, int>, dram::RowBits> written;
  for (int op = 0; op < operations; ++op) {
    const auto& bank = banks[rng.next_below(banks.size())];
    const int bank_id = bank.channel * 100 + bank.pseudo_channel * 50 +
                        bank.bank;
    // Keep rows clear of each other so later disturbance checks in other
    // tests are unaffected; rows here are only checked for written data.
    const int row = 100 + static_cast<int>(rng.next_below(20)) * 16;
    switch (rng.next_below(5)) {
      case 0: {  // write
        const auto byte = static_cast<std::uint8_t>(rng.next_below(256));
        builder.write_row(bank, row, dram::RowBits::filled(byte));
        written[{bank_id, row}] = dram::RowBits::filled(byte);
        break;
      }
      case 1:  // raw activate/precharge with random extra on-time
        builder.act(bank, row);
        if (rng.next_below(2) == 0) {
          builder.wait(rng.next_below(200));
        }
        builder.pre(bank);
        break;
      case 2:  // refresh
        builder.pre_all(bank.channel);
        builder.ref(bank.channel);
        break;
      case 3: {  // short hammer loop
        const std::array<int, 2> rows = {row, row + 1};
        builder.hammer(bank, rows, 1 + rng.next_below(50));
        break;
      }
      case 4:  // idle wait
        builder.wait(rng.next_below(5000));
        break;
    }
  }
  return written;
}

class ExecutorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorPropertyTest, RandomLegalProgramsExecuteConsistently) {
  util::Stream rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  dram::Stack stack(test_config(0x5EED));
  Executor executor(&stack);

  ProgramBuilder builder;
  const auto written = random_legal_program(rng, builder, 60);
  // Read every written row back at the end.
  std::vector<std::pair<int, int>> order;
  for (const auto& [key, bits] : written) {
    const int channel = key.first / 100;
    const int pc = (key.first % 100) / 50;
    const int bank = key.first % 50;
    builder.read_row({channel, pc, bank}, key.second);
    order.push_back(key);
  }
  const auto before = executor.now();
  const auto result = executor.run(std::move(builder).build());

  // Clock strictly advances; every readback matches the last write
  // (hammer counts above are far below any disturbance threshold).
  EXPECT_GE(result.start_cycle, before);
  EXPECT_GT(result.end_cycle, result.start_cycle);
  ASSERT_EQ(result.row_count(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(result.row(i), written.at(order[i])) << "readback " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Range(0, 12));

TEST(ExecutorProperty, NaturalRefCadenceEqualsTrefi) {
  // Paper Sec. 7: a window of REF + 78 ACT/PRE pairs occupies exactly
  // tREFI under minimum-legal scheduling — the property the bypass attack
  // pattern relies on.
  dram::Stack stack(test_config(1));
  Executor executor(&stack);
  const auto& timing = stack.timing();
  ProgramBuilder builder;
  builder.loop_begin(4);
  builder.ref(0);
  for (int i = 0; i < timing.activation_budget(); ++i) {
    builder.act({0, 0, 0}, 5000).pre({0, 0, 0});
  }
  builder.loop_end();
  // A final REF marks the end of the fourth window: it can issue no
  // earlier than 4 * tREFI after the first one, and minimum-legal
  // scheduling issues it exactly then (+1 command-bus cycle).
  builder.ref(0);
  const auto result = executor.run(std::move(builder).build());
  EXPECT_EQ(result.elapsed(), 4 * timing.t_refi + 1);
}

TEST(ExecutorProperty, IllegalSequencesAlwaysThrow) {
  const dram::BankAddress bank{0, 0, 0};
  struct Case {
    const char* name;
    std::function<void(ProgramBuilder&)> build;
  };
  const Case cases[] = {
      {"double activate",
       [&](ProgramBuilder& b) { b.act(bank, 1).act(bank, 2); }},
      {"read without activate", [&](ProgramBuilder& b) { b.rd(bank, 0); }},
      {"refresh with open bank",
       [&](ProgramBuilder& b) { b.act(bank, 1).ref(0); }},
      {"write without activate",
       [&](ProgramBuilder& b) { b.wr(bank, 0, ColumnData{}); }},
  };
  for (const auto& test_case : cases) {
    dram::Stack stack(test_config(2));
    Executor executor(&stack);
    ProgramBuilder builder;
    test_case.build(builder);
    EXPECT_THROW(executor.run(std::move(builder).build()),
                 dram::TimingViolation)
        << test_case.name;
  }
}

}  // namespace
}  // namespace hbmrd::bender
