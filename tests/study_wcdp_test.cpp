#include "study/wcdp.h"

#include <gtest/gtest.h>

#include "bender/platform.h"

namespace hbmrd::study {
namespace {

TEST(Wcdp, SelectsThePatternWithSmallestHcFirst) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  const auto map = AddressMap::from_scheme(chip.profile().mapping);
  const dram::RowAddress victim{{0, 0, 0}, 4350};
  const auto result = select_row_wcdp(chip, map, victim);

  // The chosen pattern's HC_first is minimal among the found ones.
  const auto chosen = std::find(kAllPatterns.begin(), kAllPatterns.end(),
                                result.wcdp) -
                      kAllPatterns.begin();
  ASSERT_TRUE(result.hc_first[static_cast<std::size_t>(chosen)].has_value());
  for (std::size_t i = 0; i < kAllPatterns.size(); ++i) {
    if (!result.hc_first[i]) continue;
    EXPECT_LE(*result.hc_first[static_cast<std::size_t>(chosen)],
              *result.hc_first[i]);
  }
  // BERs populated for every pattern.
  for (double ber : result.ber_at_256k) {
    EXPECT_GE(ber, 0.0);
    EXPECT_LE(ber, 1.0);
  }
}

TEST(Wcdp, CheckeredUsuallyWins) {
  // The intra-row coupling bonus makes the Checkered patterns the worst
  // case for most rows (Obsv. 3); verify on a small sample.
  bender::Platform platform;
  auto& chip = platform.chip(5);
  const auto map = AddressMap::from_scheme(chip.profile().mapping);
  int checkered = 0;
  constexpr int kRows = 6;
  for (int row = 5000; row < 5000 + kRows; ++row) {
    const auto result = select_row_wcdp(chip, map, {{0, 0, 0}, row});
    if (result.wcdp == DataPattern::kCheckered0 ||
        result.wcdp == DataPattern::kCheckered1) {
      ++checkered;
    }
  }
  EXPECT_GE(checkered, kRows / 2);
}

}  // namespace
}  // namespace hbmrd::study
