#include "bender/platform.h"

#include <gtest/gtest.h>

#include <array>

namespace hbmrd::bender {
namespace {

TEST(ChipProfiles, MatchTable3) {
  const auto profiles = dram::chip_profiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles[0].board, "Bittware XUPVVH");
  for (int i = 1; i < 6; ++i) {
    EXPECT_EQ(profiles[static_cast<std::size_t>(i)].board,
              "AMD Xilinx Alveo U50");
  }
  EXPECT_EQ(profiles[0].label, "Chip 0");
  EXPECT_EQ(profiles[5].label, "Chip 5");
  // Only Chip 0 is temperature-controlled and carries the undocumented TRR.
  EXPECT_TRUE(profiles[0].has_undocumented_trr);
  EXPECT_TRUE(profiles[0].temperature_controlled);
  for (int i = 1; i < 6; ++i) {
    EXPECT_FALSE(profiles[static_cast<std::size_t>(i)].has_undocumented_trr);
    EXPECT_FALSE(profiles[static_cast<std::size_t>(i)].temperature_controlled);
  }
  // Chip seeds differ (distinct silicon).
  EXPECT_NE(profiles[0].disturb.seed, profiles[1].disturb.seed);
  // Chip 5 has the tight die spread (Obsv. 11's exception).
  EXPECT_LT(profiles[5].disturb.sigma_die, profiles[0].disturb.sigma_die / 2);
}

TEST(Platform, ChipAccessAndBounds) {
  Platform platform;
  EXPECT_EQ(platform.chip_count(), 6);
  EXPECT_EQ(platform.chip(3).profile().index, 3);
  EXPECT_THROW((void)platform.chip(-1), std::out_of_range);
  EXPECT_THROW((void)platform.chip(6), std::out_of_range);
}

TEST(Platform, Chip0RunsAtTargetTemperature) {
  Platform platform;
  EXPECT_NEAR(platform.chip(0).temperature_c(), 82.0, 2.0);
  EXPECT_NEAR(platform.chip(2).temperature_c(),
              platform.chip(2).profile().ambient_temperature_c, 3.0);
}

TEST(Platform, WriteReadRoundTripOnEveryChip) {
  Platform platform;
  const dram::RowAddress addr{{1, 0, 2}, 1234};
  for (int i = 0; i < platform.chip_count(); ++i) {
    auto& chip = platform.chip(i);
    chip.write_row(addr, dram::RowBits::filled(0x5A));
    EXPECT_EQ(chip.read_row(addr), dram::RowBits::filled(0x5A)) << i;
  }
}

TEST(Platform, HammerConvenienceInducesDisturbance) {
  Platform platform;
  auto& chip = platform.chip(2);  // identity mapping
  const dram::BankAddress bank{0, 0, 0};
  chip.write_row({bank, 4300}, dram::RowBits::filled(0x55));
  chip.write_row({bank, 4299}, dram::RowBits::filled(0xAA));
  chip.write_row({bank, 4301}, dram::RowBits::filled(0xAA));
  const std::array<int, 2> rows = {4299, 4301};
  chip.hammer(bank, rows, 2'000'000);
  EXPECT_GT(chip.read_row({bank, 4300}).count_diff(dram::RowBits::filled(0x55)),
            0);
}

TEST(Platform, IdleDecaysAndRefreshPreserves) {
  Platform platform;
  auto& chip = platform.chip(0);  // 82 C: retention-weak rows abound
  const dram::BankAddress bank{0, 0, 0};
  // Find a row that decays within 2 s when unrefreshed.
  int weak = -1;
  for (int row = 3000; row < 3400; ++row) {
    chip.write_row({bank, row}, dram::RowBits::filled(0xFF));
    chip.idle(2.0);
    if (chip.read_row({bank, row}).count_diff(dram::RowBits::filled(0xFF)) >
        0) {
      weak = row;
      break;
    }
  }
  ASSERT_GE(weak, 0);
  // The same wait with periodic refresh keeps the data intact.
  chip.write_row({bank, weak}, dram::RowBits::filled(0xFF));
  chip.idle_with_refresh(2.0, /*channel=*/0);
  EXPECT_EQ(chip.read_row({bank, weak}).count_diff(dram::RowBits::filled(0xFF)),
            0);
}

TEST(Platform, EccModeRegisterToggle) {
  Platform platform;
  auto& chip = platform.chip(1);
  EXPECT_FALSE(chip.stack().mode_registers().ecc_enabled());
  chip.set_ecc_enabled(true);
  EXPECT_TRUE(chip.stack().mode_registers().ecc_enabled());
  chip.set_ecc_enabled(false);
  EXPECT_FALSE(chip.stack().mode_registers().ecc_enabled());
}

TEST(Platform, DeterministicAcrossInstances) {
  Platform a;
  Platform b;
  const dram::BankAddress bank{0, 0, 0};
  auto measure = [&](Platform& p) {
    auto& chip = p.chip(4);
    chip.write_row({bank, 5000}, dram::RowBits::filled(0x55));
    chip.write_row({bank, 4999}, dram::RowBits::filled(0xAA));
    chip.write_row({bank, 5001}, dram::RowBits::filled(0xAA));
    const std::array<int, 2> rows = {4999, 5001};
    chip.hammer(bank, rows, 500'000);
    return chip.read_row({bank, 5000});
  };
  EXPECT_EQ(measure(a), measure(b));
}

TEST(Platform, DifferentSeedsDifferentSilicon) {
  Platform a(1);
  Platform b(2);
  const dram::RowAddress addr{{0, 0, 0}, 77};
  // Power-on contents differ between seeds.
  EXPECT_NE(a.chip(0).read_row(addr), b.chip(0).read_row(addr));
}

}  // namespace
}  // namespace hbmrd::bender
