#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/cli.h"
#include "util/table.h"

namespace hbmrd::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.row().cell("alpha").cell(42);
  table.row().cell("b").cell(3.5, 1);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name  |"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("3.5"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Cli, ParsesFlagForms) {
  const char* argv[] = {"prog",     "--rows", "128",  "--full",
                        "--name=x", "pos1",   "pos2"};
  const Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("--rows", 0), 128);
  EXPECT_TRUE(cli.has("--full"));
  EXPECT_FALSE(cli.has("--missing"));
  EXPECT_EQ(cli.get_string("--name", ""), "x");
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.program_name(), "prog");
}

TEST(Cli, DefaultsAndErrors) {
  const char* argv[] = {"prog", "--k", "notanint", "--d", "2.5"};
  const Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("--absent", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("--d", 0.0), 2.5);
  EXPECT_THROW((void)cli.get_int("--k", 0), std::invalid_argument);
}

TEST(Cli, FlagFollowedByFlagHasNoValue) {
  const char* argv[] = {"prog", "--a", "--b", "5"};
  const Cli cli(4, argv);
  EXPECT_TRUE(cli.has("--a"));
  EXPECT_EQ(cli.get_int("--a", 3), 3);  // no value consumed
  EXPECT_EQ(cli.get_int("--b", 0), 5);
}

}  // namespace
}  // namespace hbmrd::util
