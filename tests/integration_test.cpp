// End-to-end integration: the full study pipeline (mapping reverse
// engineering -> characterization -> analysis) on the simulated testbed,
// plus cross-cutting invariants the paper's takeaways rely on.
#include <gtest/gtest.h>

#include "bender/platform.h"
#include "study/address_map.h"
#include "study/ber.h"
#include "study/hc_first.h"
#include "study/hcn.h"
#include "study/row_selection.h"
#include "study/words.h"
#include "util/stats.h"

namespace hbmrd::study {
namespace {

TEST(Integration, FullPipelineOnOneChip) {
  bender::Platform platform;
  auto& chip = platform.chip(5);
  const dram::BankAddress bank{0, 0, 0};

  // 1. Reverse engineer the mapping through the interface.
  const auto map = AddressMap::reverse_engineer(chip, bank);
  EXPECT_EQ(map.scheme(), chip.profile().mapping);

  // 2. Characterize a small row sample.
  BerConfig ber_config;
  WordAnalysis words;
  std::vector<double> bers;
  for (int row : spread_rows(12)) {
    const auto result = measure_row_ber(chip, map, {bank, row}, ber_config);
    bers.push_back(result.ber);
    words.accumulate(result.flipped_bits);
  }
  // Obsv. 1-level sanity: bitflips exist and BER is in a plausible band.
  EXPECT_GT(util::max_of(bers), 0.0);
  EXPECT_LT(util::max_of(bers), 0.05);
  EXPECT_EQ(words.words_tested(), 12u * 128u);

  // 3. HC_1..HC_10 on one row; the sequence brackets the paper's ranges.
  HcSearchConfig hc_config;
  const auto hcn = measure_hcn(chip, map, {bank, 4500}, hc_config);
  ASSERT_TRUE(hcn.complete());
  EXPECT_GE(hcn.normalized(9), 1.0);
  EXPECT_LT(hcn.normalized(9), 8.0);
}

TEST(Integration, ResilientSubarraysShowLowerBer) {
  // Takeaway 4: the middle and last 832 rows flip far less.
  bender::Platform platform;
  auto& chip = platform.chip(3);
  const dram::BankAddress bank{0, 0, 0};
  const auto map = AddressMap::from_scheme(chip.profile().mapping);
  BerConfig config;

  auto mean_ber = [&](int start_physical, int n) {
    std::vector<double> bers;
    for (int i = 0; i < n; ++i) {
      const int logical = map.to_logical(start_physical + 100 + 16 * i);
      bers.push_back(
          measure_row_ber(chip, map, {bank, logical}, config).ber);
    }
    return util::mean(bers);
  };

  const double regular = mean_ber(dram::subarray_start(3), 8);
  const double middle =
      mean_ber(dram::subarray_start(dram::kMiddleSubarray), 8);
  const double last = mean_ber(dram::subarray_start(dram::kLastSubarray), 8);
  EXPECT_GT(regular, 2.0 * middle);
  EXPECT_GT(regular, 2.0 * last);
}

TEST(Integration, ChannelPairsShareVulnerability) {
  // Obsv. 8/11 substrate: channel pairs (dies) cluster in mean BER.
  bender::Platform platform;
  auto& chip = platform.chip(4);
  const auto map = AddressMap::from_scheme(chip.profile().mapping);
  BerConfig config;
  std::vector<double> channel_mean(8);
  for (int ch = 0; ch < 8; ++ch) {
    std::vector<double> bers;
    for (int row : spread_rows(6)) {
      bers.push_back(
          measure_row_ber(chip, map, {{ch, 0, 0}, row}, config).ber);
    }
    channel_mean[static_cast<std::size_t>(ch)] = util::mean(bers);
  }
  // Paired channels are closer to each other than the overall spread.
  const double spread =
      util::max_of(channel_mean) - util::min_of(channel_mean);
  ASSERT_GT(spread, 0.0);
  for (int die = 0; die < 4; ++die) {
    const double gap =
        std::abs(channel_mean[static_cast<std::size_t>(2 * die)] -
                 channel_mean[static_cast<std::size_t>(2 * die + 1)]);
    EXPECT_LT(gap, 0.75 * spread) << "die " << die;
  }
}

TEST(Integration, DeterministicEndToEnd) {
  auto run_once = [] {
    bender::Platform platform;
    auto& chip = platform.chip(1);
    const auto map = AddressMap::from_scheme(chip.profile().mapping);
    HcSearchConfig config;
    return find_hc_first(chip, map, {{0, 0, 0}, 5000}, config);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace hbmrd::study
