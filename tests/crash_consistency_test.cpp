// Crash-consistency sweep: the capstone proof of the storage protocol.
//
// A counting run first measures how many store writes (and fsyncs) an
// uninterrupted campaign performs. Then, for EVERY reachable crash point k,
// a campaign is run against a FaultyStore that simulates power loss at the
// k-th operation — tearing the in-flight write and rolling every file's
// un-synced tail back to a seeded offset — and resumed once on a healthy
// store. The final checkpoint CSV and journal must be byte-identical to the
// uninterrupted run's, for the serial runner and for --jobs 4.
//
// Around the sweep: crash-during-recovery (the resume path's own atomic
// rewrite is interrupted and the next resume still converges), repeated
// crashes with durable mode (fsync floors bound the loss), mid-file
// corruption (quarantined and re-measured, never silently re-used), and
// the manifest refusing to resume a checkpoint from a different campaign.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bender/platform.h"
#include "fault/faulty_store.h"
#include "runner/checkpoint.h"
#include "runner/runner.h"
#include "util/crc32c.h"
#include "util/csv.h"

namespace hbmrd::runner {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "crash_test_" + name;
}

/// Chip 2: ambient, identity row mapping, no documented TRR.
bender::HbmChip fresh_chip() {
  return bender::HbmChip(dram::chip_profiles()[2]);
}

const std::vector<std::string> kColumns = {"flips", "victim_byte"};

/// Self-initializing hammer trials (same shape as runner_test): a resumed
/// or re-run trial re-measures the identical experiment.
std::vector<CampaignRunner::Trial> make_trials(int n) {
  std::vector<CampaignRunner::Trial> trials;
  for (int t = 0; t < n; ++t) {
    const int row = 64 + 8 * t;
    const auto pattern = static_cast<std::uint8_t>(0x40 + t);
    trials.push_back(
        {"row" + std::to_string(row),
         [row, pattern](bender::ChipSession& session)
             -> std::vector<std::string> {
           const dram::RowAddress victim{{0, 0, 0}, row};
           session.write_row(victim, dram::RowBits::filled(pattern));
           session.write_row({{0, 0, 0}, row - 1},
                             dram::RowBits::filled(0xFF));
           session.write_row({{0, 0, 0}, row + 1},
                             dram::RowBits::filled(0xFF));
           const std::array<int, 2> aggressors = {row - 1, row + 1};
           session.hammer({0, 0, 0}, aggressors, 20000);
           const auto bits = session.read_row(victim);
           return {std::to_string(
                       bits.count_diff(dram::RowBits::filled(pattern))),
                   std::to_string(bits.words()[0] & 0xFF)};
         }});
  }
  return trials;
}

struct Artifacts {
  std::string csv;
  std::string jsonl;

  explicit Artifacts(const std::string& tag)
      : csv(tmp_path(tag + ".csv")), jsonl(tmp_path(tag + ".jsonl")) {
    reset();
  }
  ~Artifacts() { reset(); }
  void reset() const {
    for (const auto& path : {csv, jsonl, csv + ".manifest"}) {
      std::remove(path.c_str());
    }
  }
};

RunnerConfig base_config(const Artifacts& artifacts, int jobs = 1,
                         std::uint64_t fsync_every = 0) {
  RunnerConfig config;
  config.result_columns = kColumns;
  config.results_path = artifacts.csv;
  config.journal_path = artifacts.jsonl;
  config.jobs = jobs;
  config.fsync_every_trials = fsync_every;
  return config;
}

std::string slurp(const std::string& path) {
  return util::default_store()->read(path).value_or("");
}

/// Runs the campaign with an injected crash at the given operation index,
/// expecting the simulated power loss, then resumes once on a healthy
/// store and returns the resume report.
CampaignReport crash_then_resume(const Artifacts& artifacts,
                                 const std::vector<CampaignRunner::Trial>& trials,
                                 fault::StoreFaultConfig crash, int jobs,
                                 std::uint64_t fsync_every,
                                 std::uint64_t crash_seed) {
  {
    auto chip = fresh_chip();
    auto config = base_config(artifacts, jobs, fsync_every);
    config.store = std::make_shared<fault::FaultyStore>(
        util::default_store(), crash_seed, crash);
    CampaignRunner campaign(chip, config);
    EXPECT_THROW((void)campaign.run(trials), fault::StoreCrashError);
  }
  auto chip = fresh_chip();
  auto config = base_config(artifacts, jobs, fsync_every);
  config.resume = true;
  CampaignRunner campaign(chip, config);
  return campaign.run(trials);
}

class CrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweep, EveryCrashPointRecoversByteIdentically) {
  const int jobs = GetParam();
  const auto trials = make_trials(4);

  // Reference: the uninterrupted run, through a (fault-free) FaultyStore so
  // the same wrapper counts how many writes the campaign performs.
  Artifacts reference("sweep_ref_j" + std::to_string(jobs));
  auto counting_store = std::make_shared<fault::FaultyStore>(
      util::default_store(), 0, fault::StoreFaultConfig{});
  {
    auto chip = fresh_chip();
    auto config = base_config(reference, jobs);
    config.store = counting_store;
    CampaignRunner campaign(chip, config);
    const auto report = campaign.run(trials);
    ASSERT_FALSE(report.aborted);
    ASSERT_EQ(report.completed, trials.size());
  }
  const auto ref_csv = slurp(reference.csv);
  const auto ref_jsonl = slurp(reference.jsonl);
  const auto total_writes = counting_store->stats().writes;
  ASSERT_GE(total_writes, 8u);  // manifest + header + begin + per-trial I/O

  Artifacts artifacts("sweep_j" + std::to_string(jobs));
  for (std::uint64_t k = 1; k <= total_writes; ++k) {
    artifacts.reset();
    fault::StoreFaultConfig crash;
    crash.crash_at_write = k;
    const auto report =
        crash_then_resume(artifacts, trials, crash, jobs, 0, 1000 + k);
    EXPECT_FALSE(report.aborted) << "crash point " << k;
    EXPECT_EQ(slurp(artifacts.csv), ref_csv) << "crash point " << k;
    EXPECT_EQ(slurp(artifacts.jsonl), ref_jsonl) << "crash point " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, CrashSweep,
                         ::testing::Values(1, 4));

TEST(CrashConsistency, FsyncCrashPointsRecoverInDurableMode) {
  const auto trials = make_trials(4);

  Artifacts reference("fsync_ref");
  auto counting_store = std::make_shared<fault::FaultyStore>(
      util::default_store(), 0, fault::StoreFaultConfig{});
  {
    auto chip = fresh_chip();
    auto config = base_config(reference, 1, /*fsync_every=*/1);
    config.store = counting_store;
    CampaignRunner campaign(chip, config);
    ASSERT_FALSE(campaign.run(trials).aborted);
  }
  const auto ref_csv = slurp(reference.csv);
  const auto ref_jsonl = slurp(reference.jsonl);
  const auto total_fsyncs = counting_store->stats().fsyncs;
  ASSERT_GE(total_fsyncs, trials.size());

  Artifacts artifacts("fsync_sweep");
  for (std::uint64_t k = 1; k <= total_fsyncs; ++k) {
    artifacts.reset();
    fault::StoreFaultConfig crash;
    crash.crash_at_fsync = k;
    const auto report =
        crash_then_resume(artifacts, trials, crash, 1, 1, 2000 + k);
    EXPECT_FALSE(report.aborted) << "fsync crash point " << k;
    EXPECT_EQ(slurp(artifacts.csv), ref_csv) << "fsync crash point " << k;
    EXPECT_EQ(slurp(artifacts.jsonl), ref_jsonl) << "fsync crash point " << k;
  }
}

TEST(CrashConsistency, CrashDuringRecoveryRewriteStillConverges) {
  // Satellite regression: the resume path's own checkpoint rewrite is an
  // atomic_replace; a crash in the middle of recovery must leave a state
  // the NEXT resume recovers from (the pre-rewrite artifacts are intact).
  const auto trials = make_trials(4);

  Artifacts reference("recovery_ref");
  {
    auto chip = fresh_chip();
    auto config = base_config(reference);
    CampaignRunner campaign(chip, config);
    ASSERT_FALSE(campaign.run(trials).aborted);
  }

  Artifacts artifacts("recovery_crash");
  {  // First incarnation: killed mid-campaign.
    auto chip = fresh_chip();
    auto config = base_config(artifacts);
    fault::StoreFaultConfig crash;
    crash.crash_at_write = 7;
    config.store = std::make_shared<fault::FaultyStore>(util::default_store(),
                                                        21, crash);
    CampaignRunner campaign(chip, config);
    EXPECT_THROW((void)campaign.run(trials), fault::StoreCrashError);
  }
  {  // Second incarnation: crashes again during the recovery rewrite
     // itself (the first writes of a resume are recovery's atomic
     // replaces).
    auto chip = fresh_chip();
    auto config = base_config(artifacts);
    config.resume = true;
    fault::StoreFaultConfig crash;
    crash.crash_at_write = 1;
    config.store = std::make_shared<fault::FaultyStore>(util::default_store(),
                                                        22, crash);
    CampaignRunner campaign(chip, config);
    EXPECT_THROW((void)campaign.run(trials), fault::StoreCrashError);
  }
  {  // Third incarnation: healthy store; must converge byte-identically.
    auto chip = fresh_chip();
    auto config = base_config(artifacts);
    config.resume = true;
    CampaignRunner campaign(chip, config);
    EXPECT_FALSE(campaign.run(trials).aborted);
  }
  EXPECT_EQ(slurp(artifacts.csv), slurp(reference.csv));
  EXPECT_EQ(slurp(artifacts.jsonl), slurp(reference.jsonl));
}

TEST(CrashConsistency, RepeatedPowerLossConvergesWithDurableCommits) {
  // With fsync-every-1, each committed trial is a durable floor: however
  // often power is lost, the campaign monotonically progresses and the
  // final artifacts are byte-identical to the uninterrupted run's.
  const auto trials = make_trials(5);

  Artifacts reference("repeat_ref");
  {
    auto chip = fresh_chip();
    auto config = base_config(reference, 1, /*fsync_every=*/1);
    CampaignRunner campaign(chip, config);
    ASSERT_FALSE(campaign.run(trials).aborted);
  }

  Artifacts artifacts("repeat_crash");
  bool done = false;
  int incarnations = 0;
  for (; incarnations < 100 && !done; ++incarnations) {
    auto chip = fresh_chip();
    auto config = base_config(artifacts, 1, /*fsync_every=*/1);
    config.resume = incarnations > 0;
    fault::StoreFaultConfig crash;
    crash.crash_at_write = 9;  // power loss every 9 writes, forever
    config.store = std::make_shared<fault::FaultyStore>(
        util::default_store(), 31 + static_cast<std::uint64_t>(incarnations),
        crash);
    CampaignRunner campaign(chip, config);
    try {
      done = !campaign.run(trials).aborted;
    } catch (const fault::StoreCrashError&) {
    }
  }
  ASSERT_TRUE(done) << "no convergence after " << incarnations
                    << " incarnations";
  EXPECT_GT(incarnations, 1);  // the loop actually crashed at least once
  EXPECT_EQ(slurp(artifacts.csv), slurp(reference.csv));
  EXPECT_EQ(slurp(artifacts.jsonl), slurp(reference.jsonl));
}

TEST(CrashConsistency, MidFileCorruptionIsQuarantinedAndRemeasured) {
  const auto trials = make_trials(4);

  Artifacts reference("corrupt_ref");
  {
    auto chip = fresh_chip();
    auto config = base_config(reference);
    CampaignRunner campaign(chip, config);
    ASSERT_FALSE(campaign.run(trials).aborted);
  }

  Artifacts artifacts("corrupt");
  {
    auto chip = fresh_chip();
    auto config = base_config(artifacts);
    CampaignRunner campaign(chip, config);
    ASSERT_FALSE(campaign.run(trials).aborted);
  }
  // Bit-rot the SECOND data row's payload on disk (CRC now mismatches).
  auto text = slurp(artifacts.csv);
  auto at = text.find('\n');              // end of header
  at = text.find('\n', at + 1);           // end of row 1
  const auto flip_at = at + 1 + trials[1].key.size() + 1;  // first payload byte
  text[flip_at] = text[flip_at] == '9' ? '8' : '9';
  util::default_store()->atomic_replace(artifacts.csv, text);

  auto chip = fresh_chip();
  auto config = base_config(artifacts);
  config.resume = true;
  CampaignRunner campaign(chip, config);
  const auto report = campaign.run(trials);
  EXPECT_FALSE(report.aborted);
  // The damaged row was detected, surfaced, and its trial re-measured —
  // never silently re-used.
  EXPECT_EQ(report.checkpoint_corrupt_rows, 1u);
  ASSERT_EQ(report.checkpoint_corrupt_keys.size(), 1u);
  EXPECT_EQ(report.checkpoint_corrupt_keys[0], trials[1].key);
  EXPECT_EQ(report.resumed, trials.size() - 1);
  EXPECT_EQ(report.completed, 1u);
  // The re-measured row lands at the end (the hole is not preserved), but
  // its bytes — payload and CRC — are identical to the uninterrupted
  // run's, and every trial has exactly one row.
  const auto final_csv = slurp(artifacts.csv);
  const auto ref_csv = slurp(reference.csv);
  auto line_of = [](const std::string& csv_text, const std::string& key) {
    const auto begin = csv_text.find("\n" + key + ",") + 1;
    return csv_text.substr(begin, csv_text.find('\n', begin) - begin);
  };
  for (const auto& trial : trials) {
    EXPECT_EQ(line_of(final_csv, trial.key), line_of(ref_csv, trial.key));
  }
  // The quarantine is on the record in the journal.
  EXPECT_NE(slurp(artifacts.jsonl).find("checkpoint-quarantine"),
            std::string::npos);
}

TEST(CrashConsistency, ManifestRefusesMismatchedResume) {
  const auto trials = make_trials(3);
  Artifacts artifacts("mismatch");
  {
    auto chip = fresh_chip();
    auto config = base_config(artifacts);
    config.stop_after_trials = 2;
    CampaignRunner campaign(chip, config);
    ASSERT_TRUE(campaign.run(trials).aborted);  // stopped, resumable
  }

  const auto expect_mismatch = [&](RunnerConfig config,
                                   const std::vector<CampaignRunner::Trial>&
                                       resume_trials,
                                   const std::string& needle) {
    auto chip = fresh_chip();
    config.resume = true;
    CampaignRunner campaign(chip, config);
    try {
      (void)campaign.run(resume_trials);
      FAIL() << "expected CheckpointMismatchError (" << needle << ")";
    } catch (const CheckpointMismatchError& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(artifacts.csv), std::string::npos) << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };

  {  // Different fault seed: the rows were drawn under another plan.
    auto config = base_config(artifacts);
    config.faults.seed = 999;
    expect_mismatch(config, trials, "seed");
  }
  {  // Different trial list.
    expect_mismatch(base_config(artifacts), make_trials(5), "trial");
  }
  {  // Different column set (header digest).
    auto config = base_config(artifacts);
    config.result_columns = {"flips"};
    expect_mismatch(config, trials, "header");
  }
  {  // The same config still resumes fine.
    auto chip = fresh_chip();
    auto config = base_config(artifacts);
    config.resume = true;
    CampaignRunner campaign(chip, config);
    EXPECT_FALSE(campaign.run(trials).aborted);
  }
}

TEST(CrashConsistency, DurableModeFsyncsAtCommitBoundaries) {
  // Contract check for the opt-in durable mode: fsync-every-N actually
  // syncs (journal before checkpoint) and a plain run never does.
  const auto trials = make_trials(4);
  Artifacts artifacts("durable");

  auto run_with = [&](std::uint64_t fsync_every) {
    artifacts.reset();
    auto chip = fresh_chip();
    auto config = base_config(artifacts, 1, fsync_every);
    auto store = std::make_shared<fault::FaultyStore>(
        util::default_store(), 0, fault::StoreFaultConfig{});
    config.store = store;
    CampaignRunner campaign(chip, config);
    EXPECT_FALSE(campaign.run(trials).aborted);
    return store->stats();
  };

  const auto lazy = run_with(0);
  EXPECT_EQ(lazy.fsyncs, 1u);  // only the manifest's atomic_replace
  const auto durable = run_with(2);
  // Two files per durability point: 4 trials / every-2 = 2 points, plus
  // the end-of-campaign sync and the manifest.
  EXPECT_GE(durable.fsyncs, 1u + 2u * 3u);
}

}  // namespace
}  // namespace hbmrd::runner
