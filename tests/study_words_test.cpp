#include "study/words.h"

#include <gtest/gtest.h>

namespace hbmrd::study {
namespace {

TEST(WordAnalysis, EmptyRowCountsCleanWords) {
  WordAnalysis analysis;
  analysis.accumulate({});
  EXPECT_EQ(analysis.words_tested(), 128u);
  EXPECT_EQ(analysis.words_with_exactly(0), 128u);
  EXPECT_EQ(analysis.words_with_exactly(1), 0u);
  EXPECT_EQ(analysis.max_flips_in_word(), 0);
}

TEST(WordAnalysis, ClassifiesMultiplicities) {
  WordAnalysis analysis;
  // Word 0: one flip. Word 1: two flips. Word 2: four flips.
  analysis.accumulate({5, 64, 65, 128, 129, 130, 131});
  EXPECT_EQ(analysis.words_tested(), 128u);
  EXPECT_EQ(analysis.words_with_exactly(1), 1u);
  EXPECT_EQ(analysis.words_with_exactly(2), 1u);
  EXPECT_EQ(analysis.words_with_exactly(4), 1u);
  EXPECT_EQ(analysis.words_with_more_than(2), 1u);
  EXPECT_EQ(analysis.max_flips_in_word(), 4);
}

TEST(WordAnalysis, AccumulatesAcrossRows) {
  WordAnalysis analysis;
  analysis.accumulate({0});
  analysis.accumulate({0, 1});
  analysis.accumulate({});
  EXPECT_EQ(analysis.words_tested(), 3u * 128u);
  EXPECT_EQ(analysis.words_with_exactly(1), 1u);
  EXPECT_EQ(analysis.words_with_exactly(2), 1u);
}

TEST(WordAnalysis, SecdedOutcomeClasses) {
  // Sec. 8.1: 1 flip corrected, 2 detected, >2 beyond the guarantee.
  WordAnalysis analysis;
  analysis.accumulate({1, 64, 70, 128, 130, 140, 200, 210, 220, 230});
  EXPECT_EQ(analysis.secded_corrected(), 1u);         // word 0
  EXPECT_EQ(analysis.secded_detected(), 1u);          // word 1
  EXPECT_EQ(analysis.secded_beyond_guarantee(), 2u);  // words 2 and 3
}

TEST(WordAnalysis, BoundaryQueries) {
  WordAnalysis analysis;
  analysis.accumulate({0});
  EXPECT_EQ(analysis.words_with_exactly(-1), 0u);
  EXPECT_EQ(analysis.words_with_exactly(99), 0u);
  EXPECT_EQ(analysis.words_with_more_than(0), 1u);
}

}  // namespace
}  // namespace hbmrd::study
