#include "dram/mapping.h"

#include <gtest/gtest.h>

#include <set>

namespace hbmrd::dram {
namespace {

class MappingSchemeTest : public ::testing::TestWithParam<MappingScheme> {};

TEST_P(MappingSchemeTest, IsABijectionWithExactInverse) {
  const RowMapping mapping(GetParam());
  std::set<int> seen;
  for (int logical = 0; logical < kRowsPerBank; ++logical) {
    const int physical = mapping.to_physical(logical);
    ASSERT_GE(physical, 0);
    ASSERT_LT(physical, kRowsPerBank);
    ASSERT_EQ(mapping.to_logical(physical), logical);
    seen.insert(physical);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kRowsPerBank));
}

TEST_P(MappingSchemeTest, StaysWithinItsBlock) {
  const RowMapping mapping(GetParam());
  for (int logical = 0; logical < 256; ++logical) {
    EXPECT_EQ(mapping.to_physical(logical) / 8, logical / 8);
  }
}

TEST_P(MappingSchemeTest, RejectsOutOfRangeRows) {
  const RowMapping mapping(GetParam());
  EXPECT_THROW((void)mapping.to_physical(-1), std::out_of_range);
  EXPECT_THROW((void)mapping.to_physical(kRowsPerBank), std::out_of_range);
  EXPECT_THROW((void)mapping.to_logical(-1), std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MappingSchemeTest,
                         ::testing::Values(MappingScheme::kIdentity,
                                           MappingScheme::kPairSwap,
                                           MappingScheme::kInterleave8,
                                           MappingScheme::kMirror8));

TEST(Mapping, IdentityIsIdentity) {
  const RowMapping mapping(MappingScheme::kIdentity);
  for (int r : {0, 1, 7, 8000, kRowsPerBank - 1}) {
    EXPECT_EQ(mapping.to_physical(r), r);
  }
}

TEST(Mapping, PairSwapPermutation) {
  const RowMapping mapping(MappingScheme::kPairSwap);
  EXPECT_EQ(mapping.to_physical(0), 0);
  EXPECT_EQ(mapping.to_physical(1), 2);
  EXPECT_EQ(mapping.to_physical(2), 1);
  EXPECT_EQ(mapping.to_physical(3), 3);
  EXPECT_EQ(mapping.to_physical(5), 6);
}

TEST(Mapping, Interleave8Permutation) {
  const RowMapping mapping(MappingScheme::kInterleave8);
  // {0..7} -> {0,4,1,5,2,6,3,7}
  const int expected[] = {0, 4, 1, 5, 2, 6, 3, 7};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(mapping.to_physical(i), expected[i]);
    EXPECT_EQ(mapping.to_physical(16 + i), 16 + expected[i]);
  }
}

TEST(Mapping, Mirror8Permutation) {
  const RowMapping mapping(MappingScheme::kMirror8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(mapping.to_physical(i), 7 - i);
    EXPECT_EQ(mapping.to_physical(24 + i), 24 + 7 - i);
    // Involution.
    EXPECT_EQ(mapping.to_logical(mapping.to_physical(i)), i);
  }
}

TEST(Mapping, ToString) {
  EXPECT_EQ(to_string(MappingScheme::kIdentity), "identity");
  EXPECT_EQ(to_string(MappingScheme::kPairSwap), "pair-swap");
  EXPECT_EQ(to_string(MappingScheme::kInterleave8), "interleave-8");
  EXPECT_EQ(to_string(MappingScheme::kMirror8), "mirror-8");
}

}  // namespace
}  // namespace hbmrd::dram
