#include "disturb/fault_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dram/timing.h"

namespace hbmrd::disturb {
namespace {

using dram::BankAddress;

DisturbParams params() {
  DisturbParams p;
  p.seed = 0xFA17ull;
  return p;
}

constexpr BankAddress kBank{0, 0, 0};

TEST(FaultModel, ThresholdsAreDeterministic) {
  const FaultModel a(params());
  const FaultModel b(params());
  for (int bit : {0, 1, 4095, 8191}) {
    EXPECT_DOUBLE_EQ(a.cell_threshold(kBank, 500, bit),
                     b.cell_threshold(kBank, 500, bit));
  }
  auto different = params();
  different.seed = 0xDEADull;
  const FaultModel c(different);
  EXPECT_NE(a.cell_threshold(kBank, 500, 0), c.cell_threshold(kBank, 500, 0));
}

TEST(FaultModel, ThresholdUniformMatchesThreshold) {
  // threshold <= dose  <=>  uniform <= Phi(ln(dose/median)/sigma) with the
  // (median, sigma) of the cell's population.
  const FaultModel model(params());
  const RowContext ctx = model.row_context(kBank, 500);
  for (int bit = 0; bit < 512; ++bit) {
    double median = ctx.bulk_median;
    double sigma = ctx.bulk_sigma;
    if (model.is_outlier_cell(kBank, 500, bit)) {
      median = ctx.outlier_median;
      sigma = ctx.outlier_sigma;
    } else if (model.is_weak_cell(kBank, 500, bit, ctx.weak_density)) {
      median = ctx.weak_median;
      sigma = ctx.weak_sigma;
    }
    const double threshold = model.cell_threshold(kBank, 500, bit);
    const double u = model.cell_threshold_uniform(kBank, 500, bit);
    for (double dose : {threshold * 0.9, threshold * 1.1}) {
      const bool direct = threshold <= dose;
      const bool via_cdf =
          u <= FaultModel::normal_cdf(std::log(dose / median) / sigma);
      EXPECT_EQ(direct, via_cdf) << "bit " << bit << " dose " << dose;
    }
  }
}

TEST(FaultModel, RowContextPopulations) {
  const FaultModel model(params());
  const RowContext ctx = model.row_context(kBank, 1234);
  EXPECT_GE(ctx.weak_sigma, params().sigma_cell_min);
  EXPECT_LE(ctx.weak_sigma, params().sigma_cell_max);
  EXPECT_DOUBLE_EQ(ctx.bulk_median,
                   ctx.weak_median * params().bulk_multiplier);
  EXPECT_GT(ctx.weak_density, 0.0);
  EXPECT_LE(ctx.weak_density, 0.25);

  // The measured weak fraction matches the row's density, and the weak
  // population sits far below the bulk.
  int weak_count = 0;
  std::vector<double> weak_logs;
  for (int bit = 0; bit < dram::kRowBits; ++bit) {
    if (model.is_weak_cell(kBank, 1234, bit, ctx.weak_density)) {
      ++weak_count;
      weak_logs.push_back(
          std::log(model.cell_threshold(kBank, 1234, bit) / ctx.weak_median));
    }
  }
  EXPECT_NEAR(static_cast<double>(weak_count) / dram::kRowBits,
              ctx.weak_density, 4.0 * std::sqrt(ctx.weak_density / 8192.0));
  ASSERT_GT(weak_logs.size(), 20u);
  double mean = 0;
  for (double x : weak_logs) mean += x;
  mean /= static_cast<double>(weak_logs.size());
  EXPECT_NEAR(mean, 0.0, 3.0 * ctx.weak_sigma /
                             std::sqrt(static_cast<double>(weak_logs.size())));
}

TEST(FaultModel, ResilientSubarraysHaveLowerWeakDensity) {
  // Obsv. 15: middle (subarray 10) and last (subarray 20) subarrays are
  // more resilient — modeled as a quadratically lower weak-cell density.
  // Average over rows to cancel the per-row density jitter.
  const FaultModel model(params());
  auto mean_density = [&](int subarray) {
    double sum = 0;
    const int start = dram::subarray_start(subarray);
    for (int i = 0; i < 200; ++i) {
      sum += model.row_context(kBank, start + 200 + i).weak_density;
    }
    return sum / 200.0;
  };
  const double regular = mean_density(0);
  EXPECT_GT(regular, 2.5 * mean_density(dram::kMiddleSubarray));
  EXPECT_GT(regular, 2.5 * mean_density(dram::kLastSubarray));
}

TEST(FaultModel, WeakDensityPeaksMidSubarray) {
  // Obsv. 14: vulnerability (weak density) peaks toward the middle of a
  // subarray. Average across rows and subarrays to cancel jitter.
  const FaultModel model(params());
  double edge = 0, mid = 0;
  int n = 0;
  for (int sa : {1, 2, 3, 4, 5, 6, 7, 8}) {
    const int start = dram::subarray_start(sa);
    const int size = dram::subarray_size(sa);
    for (int i = 0; i < 8; ++i) {
      edge += model.row_context(kBank, start + 1 + i).weak_density;
      edge += model.row_context(kBank, start + size - 2 - i).weak_density;
      mid += model.row_context(kBank, start + size / 2 - 4 + i).weak_density;
      mid += model.row_context(kBank, start + size / 2 + 4 + i).weak_density;
      n += 2;
    }
  }
  EXPECT_GT(mid / n, edge / n);
}

TEST(FaultModel, TAggOnFactorIsMonotoneAndAnchored) {
  const FaultModel model(params());
  const dram::TimingParams t;
  // Anchors from the paper's aggregate scaling (Obsv. 23).
  EXPECT_DOUBLE_EQ(model.taggon_factor(t.t_ras), 1.0);
  EXPECT_NEAR(model.taggon_factor(t.t_refi), 55.0, 1.0);
  EXPECT_NEAR(model.taggon_factor(t.max_ref_delay()), 222.0, 4.0);
  EXPECT_NEAR(model.taggon_factor(t.t_refw / 2), 2.0e5, 2.0e4);
  // Monotone non-decreasing over a broad sweep.
  double prev = 0.0;
  for (dram::Cycle on = 1; on < t.t_refw; on *= 2) {
    const double f = model.taggon_factor(on);
    EXPECT_GE(f, prev);
    prev = f;
  }
  // Below the minimum on-time the factor clamps at 1.
  EXPECT_DOUBLE_EQ(model.taggon_factor(1), 1.0);
}

TEST(FaultModel, CouplingPrefersOppositeBitsAndIntraBonus) {
  const FaultModel model(params());
  EXPECT_DOUBLE_EQ(model.coupling(false, true, false), 1.0);
  EXPECT_DOUBLE_EQ(model.coupling(true, false, false), 1.0);
  EXPECT_LT(model.coupling(true, true, false), 1.0);
  EXPECT_GT(model.coupling(false, true, true),
            model.coupling(false, true, false));
}

TEST(FaultModel, DistanceFactorBlastRadius) {
  const FaultModel model(params());
  EXPECT_DOUBLE_EQ(model.distance_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(model.distance_factor(-1), 1.0);
  EXPECT_GT(model.distance_factor(2), 0.0);
  EXPECT_LT(model.distance_factor(2), 0.1);
  EXPECT_DOUBLE_EQ(model.distance_factor(3), 0.0);
  EXPECT_DOUBLE_EQ(model.distance_factor(0), 0.0);
}

TEST(FaultModel, TrueCellFractionAndChargeSemantics) {
  const FaultModel model(params());
  int true_cells = 0;
  constexpr int kSamples = 8192;
  for (int bit = 0; bit < kSamples; ++bit) {
    if (model.is_true_cell(kBank, 42, bit)) ++true_cells;
  }
  EXPECT_NEAR(static_cast<double>(true_cells) / kSamples,
              params().true_cell_fraction, 0.02);
  // A true cell is charged when storing 1; an anti cell when storing 0.
  for (int bit = 0; bit < 16; ++bit) {
    const bool is_true = model.is_true_cell(kBank, 42, bit);
    EXPECT_EQ(model.is_charged(kBank, 42, bit, true), is_true);
    EXPECT_EQ(model.is_charged(kBank, 42, bit, false), !is_true);
  }
}

TEST(FaultModel, RetentionMixtureAndTemperatureScaling) {
  const FaultModel model(params());
  // Retention halves per +10 C for every cell.
  for (int bit = 0; bit < 64; ++bit) {
    const double cool = model.retention_seconds(kBank, 7, bit, 45.0);
    const double warm = model.retention_seconds(kBank, 7, bit, 55.0);
    EXPECT_NEAR(warm, cool / 2.0, cool * 1e-9);
  }
  // Leaky cells exist but are rare; scan a few rows' worth of cells.
  int leaky = 0;
  constexpr int kCells = 200'000;
  for (int i = 0; i < kCells; ++i) {
    if (model.is_leaky_cell(kBank, i / dram::kRowBits,
                            i % dram::kRowBits)) {
      ++leaky;
    }
  }
  const double fraction = static_cast<double>(leaky) / kCells;
  EXPECT_GT(fraction, params().leaky_cell_fraction / 4);
  EXPECT_LT(fraction, params().leaky_cell_fraction * 4);
}

TEST(FaultModel, TemperatureVulnerabilityIsMildAndMonotone) {
  const FaultModel model(params());
  EXPECT_DOUBLE_EQ(model.temperature_vulnerability(60.0), 1.0);
  EXPECT_GT(model.temperature_vulnerability(82.0), 1.0);
  EXPECT_LT(model.temperature_vulnerability(82.0), 1.2);
  EXPECT_LT(model.temperature_vulnerability(40.0), 1.0);
  EXPECT_GE(model.temperature_vulnerability(-200.0), 0.1);  // clamped
}

TEST(FaultModel, DieFactorsGroupChannelPairs) {
  // Channels 2k and 2k+1 share a die factor; with per-channel jitter far
  // smaller than die spread, paired channels' mean thresholds are closer
  // to each other than the extremes across dies. Verified statistically.
  auto p = params();
  p.sigma_channel = 0.0;  // isolate the die factor
  p.sigma_bank = 0.0;
  p.sigma_row = 0.0;
  const FaultModel model(p);
  std::vector<double> channel_level(8);
  for (int ch = 0; ch < 8; ++ch) {
    double sum = 0;
    for (int row = 1000; row < 1100; ++row) {
      sum += std::log(
          model.row_context(BankAddress{ch, 0, 0}, row).weak_median);
    }
    channel_level[static_cast<std::size_t>(ch)] = sum / 100.0;
  }
  for (int die = 0; die < 4; ++die) {
    EXPECT_NEAR(channel_level[static_cast<std::size_t>(2 * die)],
                channel_level[static_cast<std::size_t>(2 * die + 1)], 1e-9);
  }
}

TEST(FaultModel, PowerOnBitsBalanced) {
  const FaultModel model(params());
  int ones = 0;
  for (int bit = 0; bit < dram::kRowBits; ++bit) {
    if (model.power_on_bit(kBank, 3, bit)) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / dram::kRowBits, 0.5, 0.03);
}

}  // namespace
}  // namespace hbmrd::disturb
