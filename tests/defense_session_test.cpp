// ProtectedSession accounting: the window-boundary and periodic-refresh
// cursors must stay exact under clock drift and under catch-up.
//
// Two regressions pinned here:
//   * flush() re-anchors the estimated cycle on the executor clock; the
//     window/refresh deadlines live on the same timeline, so they must
//     shift by the same drift. (The old code left them behind, so positive
//     drift fired a burst of on_window_boundary() calls and negative drift
//     silenced them for a whole window.)
//   * the periodic-refresh catch-up loop must issue one REF per *elapsed*
//     tREFI — a RowPress-style long on-time crossing several deadlines in
//     one command must not collapse them into a single REF.
//
// The oracle is a ~20-line reference model in accounted-cycle space. The
// drift re-anchoring shifts the estimate and both deadlines equally, so
// the deadline gaps relative to accounted time are invariant — the model
// stays exact no matter how much out-of-band time the chip burns between
// session batches.
#include "defense/protected_session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bender/platform.h"
#include "defense/blockhammer.h"

namespace hbmrd::defense {
namespace {

constexpr dram::BankAddress kBank{0, 0, 0};

/// Counts the callbacks the session delivers to its defense.
class SpyDefense final : public ControllerDefense {
 public:
  void on_window_cadence(dram::Cycle window_cycles) override {
    cadence = window_cycles;
  }
  DefenseDecision on_activate(const dram::BankAddress& /*bank*/,
                              int /*logical_row*/,
                              dram::Cycle /*now*/) override {
    ++stats_.observed_activations;
    return {};
  }
  void on_window_boundary() override { ++boundaries; }
  [[nodiscard]] std::string name() const override { return "Spy"; }

  dram::Cycle cadence = 0;
  std::uint64_t boundaries = 0;
};

/// Reference model of the session's accounting, in accounted-cycle space
/// (deadlines relative to the construction anchor). Mirrors append() for a
/// single-channel stream through a defense that never stalls or refreshes.
struct AccountingModel {
  explicit AccountingModel(const dram::TimingParams& t)
      : timing(t), next_refresh(t.t_refi), next_window(t.t_refw) {}

  void advance(dram::Cycle cycles) {
    accounted += cycles;
    while (accounted >= next_window) {
      ++windows;
      next_window += timing.t_refw;
    }
  }

  void append(const Activation& activation) {
    while (accounted >= next_refresh) {
      ++refreshes;
      advance(timing.t_rfc);
      next_refresh += timing.t_refi;
    }
    dram::Cycle open = timing.t_rc;
    if (activation.on_cycles > 0) {
      open = std::max<dram::Cycle>(activation.on_cycles + 1, timing.t_ras) +
             timing.t_rp;
    }
    advance(open);
  }

  dram::TimingParams timing;
  dram::Cycle accounted = 0;
  dram::Cycle next_refresh;
  dram::Cycle next_window;
  std::uint64_t refreshes = 0;
  std::uint64_t windows = 0;
};

/// Burns `cycles` of real executor time the session never sees — the drift
/// source: the estimate anchor moves at the next flush.
void out_of_band_wait(bender::HbmChip& chip, dram::Cycle cycles) {
  bender::ProgramBuilder builder;
  builder.wait(cycles);
  chip.run(std::move(builder).build());
}

/// RowPress-paced activations: cheap way to cross window boundaries (each
/// act costs ~tREFI of estimated time instead of tRC).
std::vector<Activation> long_open_burst(std::size_t count,
                                        dram::Cycle on_cycles, int row) {
  std::vector<Activation> burst;
  burst.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    burst.push_back(Activation{kBank, row + static_cast<int>(i % 4), on_cycles});
  }
  return burst;
}

TEST(ProtectedSession, RejectsNullChipAndDefense) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  EXPECT_THROW(
      ProtectedSession(nullptr, std::make_unique<NullDefense>()),
      std::invalid_argument);
  EXPECT_THROW(ProtectedSession(&chip, nullptr), std::invalid_argument);
}

TEST(ProtectedSession, AnnouncesItsWindowCadenceToTheDefense) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  auto spy = std::make_unique<SpyDefense>();
  auto* raw = spy.get();
  ProtectedSession session(&chip, std::move(spy));
  EXPECT_EQ(raw->cadence, chip.stack().timing().t_refw);
}

TEST(ProtectedSession, RefreshCatchUpIssuesOneRefPerElapsedTrefi) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  const auto& timing = chip.stack().timing();
  // Each activation holds the row open for ~3.5 tREFI, crossing several
  // refresh deadlines per command. The fixed loop makes every one up.
  const auto burst =
      long_open_burst(40, 3 * timing.t_refi + timing.t_refi / 2, 100);
  ProtectedSession session(&chip, std::make_unique<NullDefense>());
  session.run(burst);

  AccountingModel model(timing);
  for (const auto& activation : burst) model.append(activation);
  EXPECT_EQ(session.periodic_refreshes_issued(), model.refreshes);
  EXPECT_EQ(session.accounted_cycles(), model.accounted);
  // ~3.5 intervals per act: far more than the one-per-catch-up the old
  // loop produced.
  EXPECT_GT(session.periodic_refreshes_issued(), 3 * burst.size());
  // run() ends with a flush, which re-anchors the estimate exactly.
  EXPECT_EQ(session.estimated_now(), chip.now());
}

TEST(ProtectedSession, WindowAndRefreshAccountingExactUnderDrift) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  const auto& timing = chip.stack().timing();
  auto spy = std::make_unique<SpyDefense>();
  auto* raw = spy.get();
  ProtectedSession session(&chip, std::move(spy));
  AccountingModel model(timing);

  const auto run_batch = [&](std::size_t count, dram::Cycle on_cycles) {
    const auto burst = long_open_burst(count, on_cycles, 2000);
    session.run(burst);
    for (const auto& activation : burst) model.append(activation);
  };

  // Batch 1 crosses ~1.2 windows of accounted time.
  run_batch(10'000, timing.t_refi);
  // Inject positive drift: half a window of out-of-band executor time the
  // session never accounted. The old flush fired the next boundary half a
  // window early (and, for larger drifts, in a burst).
  out_of_band_wait(chip, timing.t_refw / 2 + 1234);
  run_batch(8'000, timing.t_refi);
  // A drift of several windows at once.
  out_of_band_wait(chip, 3 * timing.t_refw + 7);
  run_batch(8'000, timing.t_refi);

  EXPECT_EQ(session.window_boundaries_fired(), model.windows);
  EXPECT_EQ(raw->boundaries, model.windows);
  EXPECT_EQ(session.periodic_refreshes_issued(), model.refreshes);
  EXPECT_EQ(session.accounted_cycles(), model.accounted);
  EXPECT_EQ(session.window_boundaries_fired(),
            session.accounted_cycles() / timing.t_refw);
  EXPECT_GE(model.windows, 3u);  // the test actually crossed boundaries
  EXPECT_EQ(session.estimated_now(), chip.now());
}

TEST(ProtectedSession, PeriodicRefreshCanBeDisabled) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  const auto& timing = chip.stack().timing();
  ProtectedSession session(&chip, std::make_unique<NullDefense>(),
                           /*issue_periodic_refresh=*/false);
  session.run(long_open_burst(50, 4 * timing.t_refi, 300));
  EXPECT_EQ(session.periodic_refreshes_issued(), 0u);
  EXPECT_GT(session.accounted_cycles(), 100 * timing.t_refi);
}

TEST(BlockHammer, StallDerivesFromTheAnnouncedCadence) {
  BlockHammerConfig config;
  config.protect_threshold = 1000;
  config.blacklist_threshold = 100;
  config.window_cycles = 1'000'000;
  BlockHammer defense(config);
  const std::uint64_t budget =
      config.protect_threshold - config.blacklist_threshold;
  EXPECT_EQ(defense.decay_window_cycles(), config.window_cycles);
  EXPECT_EQ(defense.throttle_stall(),
            (config.window_cycles + budget - 1) / budget);

  // Re-announcing the cadence (what a hosting session does) re-derives the
  // stall from the *real* decay window, not the configured default.
  const dram::Cycle session_window = dram::TimingParams{}.t_refw;
  defense.on_window_cadence(session_window);
  EXPECT_EQ(defense.decay_window_cycles(), session_window);
  EXPECT_EQ(defense.throttle_stall(),
            (session_window + budget - 1) / budget);
  // The pacing bound: a blacklisted row can squeeze at most `budget`
  // further activations into one decay window.
  EXPECT_GE(defense.throttle_stall() * budget, session_window);
}

TEST(BlockHammer, SessionOverridesAMistunedWindow) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  BlockHammerConfig config;
  config.protect_threshold = 4'000;
  config.blacklist_threshold = 500;
  // Deliberately mis-tuned: a window 16x shorter than the session's tREFW
  // would yield a 16x-too-small stall and let blacklisted rows overshoot.
  config.window_cycles = dram::TimingParams{}.t_refw / 16;
  auto defense = std::make_unique<BlockHammer>(config);
  auto* raw = defense.get();
  ProtectedSession session(&chip, std::move(defense));
  EXPECT_EQ(raw->decay_window_cycles(), chip.stack().timing().t_refw);
  const std::uint64_t budget =
      config.protect_threshold - config.blacklist_threshold;
  EXPECT_GE(raw->throttle_stall() * budget, chip.stack().timing().t_refw);
}

}  // namespace
}  // namespace hbmrd::defense
