#include "workload/traces.h"

#include <gtest/gtest.h>

namespace hbmrd::workload {
namespace {

TEST(Traces, UniformCoversTheBankAndIsDeterministic) {
  TraceConfig config;
  config.activations = 20'000;
  const auto a = uniform_trace(config);
  const auto b = uniform_trace(config);
  ASSERT_EQ(a.size(), config.activations);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
    ASSERT_GE(a[i].row, 0);
    ASSERT_LT(a[i].row, dram::kRowsPerBank);
  }
  const auto stats = analyze(a);
  // ~20K draws over 16384 rows: most rows distinct, no row hot.
  EXPECT_GT(stats.distinct_rows, 10'000u);
  EXPECT_LT(stats.hottest_row_count, 20u);
}

TEST(Traces, ZipfIsSkewed) {
  TraceConfig config;
  config.activations = 50'000;
  const auto stats = analyze(zipf_trace(config));
  // The head rank dominates: far hotter than uniform would allow, but the
  // tail still spreads over many rows.
  EXPECT_GT(stats.hottest_row_count, 2'000u);
  EXPECT_GT(stats.distinct_rows, 500u);
}

TEST(Traces, ZipfExponentControlsSkew) {
  TraceConfig config;
  config.activations = 30'000;
  const auto mild = analyze(zipf_trace(config, 0.8));
  const auto steep = analyze(zipf_trace(config, 1.4));
  EXPECT_GT(steep.hottest_row_count, mild.hottest_row_count);
  EXPECT_THROW(zipf_trace(config, 1.0, 0), std::invalid_argument);
}

TEST(Traces, StreamingWrapsWithoutReuse) {
  TraceConfig config;
  config.activations = 1000;
  const auto trace = streaming_trace(config, 3);
  EXPECT_EQ(trace[0].row, 0);
  EXPECT_EQ(trace[1].row, 3);
  const auto stats = analyze(trace);
  EXPECT_EQ(stats.distinct_rows, 1000u);  // far below one wrap
  EXPECT_THROW(streaming_trace(config, 0), std::invalid_argument);
}

TEST(Traces, AttackTraceMixesAggressorsIntoCover) {
  TraceConfig config;
  config.activations = 20'000;
  const auto map =
      study::AddressMap::from_scheme(dram::MappingScheme::kIdentity);
  const int victim = 5000;
  const auto trace = attack_trace(config, map, victim, 0.3);
  std::size_t aggressor_acts = 0;
  for (const auto& activation : trace) {
    if (activation.row == victim - 1 || activation.row == victim + 1) {
      ++aggressor_acts;
    }
  }
  const double share =
      static_cast<double>(aggressor_acts) / config.activations;
  EXPECT_NEAR(share, 0.3, 0.02);
  EXPECT_THROW(attack_trace(config, map, victim, 0.0),
               std::invalid_argument);
}

TEST(Traces, PureAttackAlternatesAggressors) {
  TraceConfig config;
  config.activations = 100;
  const auto map =
      study::AddressMap::from_scheme(dram::MappingScheme::kIdentity);
  const auto trace = attack_trace(config, map, 5000, 1.0);
  const auto stats = analyze(trace);
  EXPECT_EQ(stats.distinct_rows, 2u);
  EXPECT_EQ(stats.hottest_row_count, 50u);
}

}  // namespace
}  // namespace hbmrd::workload
