#include "disturb/dose.h"

#include <gtest/gtest.h>

namespace hbmrd::disturb {
namespace {

TEST(DoseLedger, StartsEmpty) {
  DoseLedger ledger;
  EXPECT_TRUE(ledger.empty());
  EXPECT_EQ(ledger.adjacent_dose(), 0.0);
  EXPECT_TRUE(ledger.epochs().empty());
}

TEST(DoseLedger, MergesSameDistanceVersionAndUnit) {
  DoseLedger ledger;
  const auto bits = dram::RowBits::filled(0xAA);
  ledger.add(1, 7, bits, 10.0);
  ledger.add(1, 7, bits, 10.0, 4);
  ASSERT_EQ(ledger.epochs().size(), 1u);
  EXPECT_EQ(ledger.epochs()[0].count, 5u);
  EXPECT_DOUBLE_EQ(ledger.epochs()[0].dose(), 50.0);
  EXPECT_EQ(ledger.epochs()[0].distance, 1);
}

TEST(DoseLedger, SeparatesDistancesVersionsAndUnits) {
  DoseLedger ledger;
  const auto bits = dram::RowBits::filled(0xAA);
  ledger.add(1, 7, bits, 10.0);
  ledger.add(-1, 7, bits, 4.0);
  ledger.add(1, 8, bits, 2.0);   // content changed: new epoch
  ledger.add(1, 7, bits, 2.5);   // different unit dose: new epoch
  EXPECT_EQ(ledger.epochs().size(), 4u);
  EXPECT_DOUBLE_EQ(ledger.adjacent_dose(), 18.5);
}

TEST(DoseLedger, SplitAccumulationIsExactlyAssociative) {
  // The incremental HC search hammers a count in several delta windows;
  // the resulting epoch must equal one window of the summed count exactly
  // (integer count addition, no floating-point re-association).
  const auto bits = dram::RowBits::filled(0x0F);
  const double unit = 0.3;  // not exactly representable
  DoseLedger split;
  split.add(1, 1, bits, unit, 7);
  split.add(1, 1, bits, unit, 93);
  split.add(1, 1, bits, unit, 900);
  DoseLedger whole;
  whole.add(1, 1, bits, unit, 1000);
  ASSERT_EQ(split.epochs().size(), 1u);
  EXPECT_EQ(split.epochs()[0].count, whole.epochs()[0].count);
  EXPECT_EQ(split.epochs()[0].dose(), whole.epochs()[0].dose());
}

TEST(DoseLedger, MergesWithEarlierEpochAfterInterleaving) {
  // The hammer pattern A B A B ... must not grow the epoch list.
  DoseLedger ledger;
  const auto bits_a = dram::RowBits::filled(0xAA);
  const auto bits_b = dram::RowBits::filled(0x55);
  for (int i = 0; i < 100; ++i) {
    ledger.add(1, 1, bits_a, 1.0);
    ledger.add(-1, 2, bits_b, 1.0);
  }
  ASSERT_EQ(ledger.epochs().size(), 2u);
  EXPECT_DOUBLE_EQ(ledger.epochs()[0].dose(), 100.0);
  EXPECT_DOUBLE_EQ(ledger.epochs()[1].dose(), 100.0);
}

TEST(DoseLedger, AdjacentDoseIgnoresBlastRadius) {
  DoseLedger ledger;
  const auto bits = dram::RowBits::filled(0x00);
  ledger.add(2, 1, bits, 50.0);
  ledger.add(-2, 1, bits, 50.0);
  EXPECT_DOUBLE_EQ(ledger.adjacent_dose(), 0.0);
  ledger.add(-1, 1, bits, 3.0);
  EXPECT_DOUBLE_EQ(ledger.adjacent_dose(), 3.0);
}

TEST(DoseLedger, ClearResets) {
  DoseLedger ledger;
  ledger.add(1, 1, dram::RowBits{}, 1.0);
  EXPECT_FALSE(ledger.empty());
  ledger.clear();
  EXPECT_TRUE(ledger.empty());
  EXPECT_EQ(ledger.epochs().size(), 0u);
}

TEST(DoseLedger, EpochKeepsAggressorSnapshot) {
  DoseLedger ledger;
  auto bits = dram::RowBits::filled(0xFF);
  ledger.add(1, 1, bits, 1.0);
  bits.set(0, false);  // mutating the caller's copy must not leak in
  EXPECT_TRUE(ledger.epochs()[0].aggressor_bits.get(0));
}

}  // namespace
}  // namespace hbmrd::disturb
