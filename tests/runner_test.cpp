// Campaign runner: recovery semantics and reproducibility guarantees.
//
// The properties under test are the ones the long sweeps depend on:
// identical (seed, plan) campaigns journal identically; a killed-and-resumed
// campaign commits the same CSV bytes as an uninterrupted one; injected
// faults cost retries but never change committed payloads; persistent
// faults are quarantined and reported, not silently dropped.
#include "runner/runner.h"

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bender/platform.h"

namespace hbmrd::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "runner_test_" + name;
}

/// Chip 2: ambient, identity row mapping, no documented TRR.
bender::HbmChip fresh_chip() {
  return bender::HbmChip(dram::chip_profiles()[2]);
}

const std::vector<std::string> kColumns = {"flips", "victim_byte"};

/// Self-initializing double-sided hammer trials: each writes victim and
/// aggressors, hammers, and reads the victim back, so a retried or resumed
/// trial re-measures the identical experiment.
std::vector<CampaignRunner::Trial> make_trials(int n) {
  std::vector<CampaignRunner::Trial> trials;
  for (int t = 0; t < n; ++t) {
    const int row = 64 + 8 * t;
    const auto pattern = static_cast<std::uint8_t>(0x40 + t);
    trials.push_back(
        {"row" + std::to_string(row),
         [row, pattern](bender::ChipSession& session)
             -> std::vector<std::string> {
           const dram::RowAddress victim{{0, 0, 0}, row};
           session.write_row(victim, dram::RowBits::filled(pattern));
           session.write_row({{0, 0, 0}, row - 1},
                             dram::RowBits::filled(0xFF));
           session.write_row({{0, 0, 0}, row + 1},
                             dram::RowBits::filled(0xFF));
           const std::array<int, 2> aggressors = {row - 1, row + 1};
           session.hammer({0, 0, 0}, aggressors, 20000);
           const auto bits = session.read_row(victim);
           return {std::to_string(
                       bits.count_diff(dram::RowBits::filled(pattern))),
                   std::to_string(bits.words()[0] & 0xFF)};
         }});
  }
  return trials;
}

fault::FaultPlanConfig noisy_faults() {
  fault::FaultPlanConfig faults;
  faults.transient_rate = 0.4;
  faults.thermal_rate = 0.2;
  return faults;
}

TEST(CampaignRunner, FaultFreeCampaignCompletesEverything) {
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = kColumns;
  CampaignRunner campaign(chip, config);
  const auto report = campaign.run(make_trials(6));
  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.completion_rate(), 1.0);
  for (const auto& record : report.records) {
    EXPECT_EQ(record.status, TrialStatus::kOk);
    EXPECT_EQ(record.cells.size(), kColumns.size());
  }
}

TEST(CampaignRunner, SamePlanJournalsByteIdentically) {
  const auto journal_of = [](const std::string& path) {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = noisy_faults();
    config.journal_path = path;
    CampaignRunner campaign(chip, config);
    const auto report = campaign.run(make_trials(8));
    EXPECT_FALSE(report.aborted);
    return slurp(path);
  };
  const auto a = journal_of(tmp_path("journal_a.jsonl"));
  const auto b = journal_of(tmp_path("journal_b.jsonl"));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.rfind("{\"event\":\"campaign-begin\"", 0), 0u);
  EXPECT_NE(a.find("\"event\":\"campaign-end\""), std::string::npos);
}

TEST(CampaignRunner, InjectedFaultsNeverChangeCommittedPayloads) {
  const auto payloads_with = [](fault::FaultPlanConfig faults,
                                CampaignReport* out) {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = faults;
    CampaignRunner campaign(chip, config);
    *out = campaign.run(make_trials(8));
    std::vector<std::vector<std::string>> cells;
    for (const auto& record : out->records) cells.push_back(record.cells);
    return cells;
  };

  CampaignReport clean_report, faulty_report;
  const auto clean = payloads_with(fault::FaultPlanConfig{}, &clean_report);
  const auto faulty = payloads_with(noisy_faults(), &faulty_report);

  EXPECT_GT(faulty_report.retries, 0u) << "fault plan injected nothing";
  EXPECT_EQ(faulty_report.completion_rate(), 1.0);
  EXPECT_EQ(clean, faulty)
      << "a retried trial must re-measure the identical experiment";
}

TEST(CampaignRunner, KillAndResumeReproducesTheUninterruptedCsv) {
  const auto trials = make_trials(8);
  const auto full_path = tmp_path("full.csv");
  const auto part_path = tmp_path("part.csv");

  {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = noisy_faults();
    config.results_path = full_path;
    CampaignRunner campaign(chip, config);
    EXPECT_FALSE(campaign.run(trials).aborted);
  }
  {
    // "Kill" the campaign partway: checkpoint after 3 trials and stop.
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = noisy_faults();
    config.results_path = part_path;
    config.stop_after_trials = 3;
    CampaignRunner campaign(chip, config);
    const auto report = campaign.run(trials);
    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.abort_reason, "stop-after-trials");
    EXPECT_EQ(report.completed + report.quarantined, 3u);
  }
  {
    // Resume on a rebooted host (fresh chip): skips the committed rows.
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = noisy_faults();
    config.results_path = part_path;
    config.resume = true;
    CampaignRunner campaign(chip, config);
    const auto report = campaign.run(trials);
    EXPECT_FALSE(report.aborted);
    EXPECT_EQ(report.resumed, 3u);
    EXPECT_EQ(report.records.size(), trials.size());
  }
  EXPECT_EQ(slurp(full_path), slurp(part_path));
}

TEST(CampaignRunner, ResumeDiscardsAPartialTrailingLine) {
  const auto trials = make_trials(6);
  const auto full_path = tmp_path("full_partial.csv");
  const auto cut_path = tmp_path("cut_partial.csv");

  {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.results_path = full_path;
    CampaignRunner campaign(chip, config);
    EXPECT_FALSE(campaign.run(trials).aborted);
  }
  // Simulate a kill mid-write: keep 3 committed rows plus half of row 4.
  const auto full = slurp(full_path);
  std::size_t offset = 0;
  for (int newlines = 0; newlines < 4; ++offset) {
    if (full[offset] == '\n') ++newlines;
  }
  std::ofstream(cut_path) << full.substr(0, offset + 5);
  {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.results_path = cut_path;
    config.resume = true;
    CampaignRunner campaign(chip, config);
    const auto report = campaign.run(trials);
    EXPECT_FALSE(report.aborted);
    EXPECT_EQ(report.resumed, 3u) << "the torn row must not be trusted";
  }
  EXPECT_EQ(slurp(full_path), slurp(cut_path));
}

TEST(CampaignRunner, PersistentFaultsAreQuarantinedAndReported) {
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = kColumns;
  config.faults.persistent_rate = 1.0;
  config.results_path = tmp_path("quarantine.csv");
  CampaignRunner campaign(chip, config);
  const auto trials = make_trials(4);
  const auto report = campaign.run(trials);

  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.quarantined, 4u);
  EXPECT_EQ(report.completion_rate(), 0.0);
  EXPECT_EQ(report.quarantined_keys().size(), 4u);
  for (const auto& record : report.records) {
    EXPECT_EQ(record.status, TrialStatus::kQuarantined);
    EXPECT_EQ(record.attempts, 1) << "persistent faults must not be retried";
    EXPECT_EQ(record.quarantine_reason, "stuck-readout");
    EXPECT_TRUE(record.cells.empty());
  }
  // The CSV reports the quarantined rows instead of dropping them.
  const auto csv = slurp(config.results_path);
  for (const auto& trial : trials) {
    EXPECT_NE(csv.find(trial.key + ",quarantined,,"), std::string::npos)
        << trial.key;
  }
}

TEST(CampaignRunner, GuardBandWaitsOutThermalExcursions) {
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = kColumns;
  config.faults.thermal_rate = 1.0;
  CampaignRunner campaign(chip, config);
  const auto report = campaign.run(make_trials(4));

  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(report.completion_rate(), 1.0);
  EXPECT_GT(report.guard_blocks, 0u);
  EXPECT_GT(report.guard_wait_s, 0.0);
  EXPECT_GT(campaign.session().stats().thermal_excursions, 0u);

  // Excursions cost waiting time, not result fidelity.
  auto clean_chip = fresh_chip();
  RunnerConfig clean_config;
  clean_config.result_columns = kColumns;
  CampaignRunner clean(clean_chip, clean_config);
  const auto clean_report = clean.run(make_trials(4));
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    EXPECT_EQ(report.records[i].cells, clean_report.records[i].cells);
  }
}

TEST(CampaignRunner, FatalFaultAbortsWithTheJournalIntact) {
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = kColumns;
  config.faults.fatal_rate = 1.0;
  config.journal_path = tmp_path("fatal.jsonl");
  CampaignRunner campaign(chip, config);
  const auto report = campaign.run(make_trials(4));

  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.abort_reason, "host-crash");
  const auto journal = slurp(config.journal_path);
  EXPECT_NE(journal.find("\"event\":\"campaign-abort\""), std::string::npos);
  EXPECT_NE(journal.find("host-crash"), std::string::npos);
}

TEST(CampaignRunner, ResumeLoopSurvivesRepeatedHostCrashes) {
  // With a 40% per-trial crash rate, repeatedly resuming (each time on a
  // rebooted host, with the incarnation advanced by the committed rows)
  // must still finish the campaign — the incarnation keys the fatal draw,
  // so a crash does not recur deterministically on the same trial.
  const auto trials = make_trials(6);
  const auto path = tmp_path("crashy.csv");
  { std::ofstream truncate(path); }  // start empty

  fault::FaultPlanConfig faults;
  faults.fatal_rate = 0.4;

  bool finished = false;
  for (int incarnation = 0; incarnation < 25 && !finished; ++incarnation) {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = faults;
    config.results_path = path;
    config.resume = true;
    CampaignRunner campaign(chip, config);
    finished = !campaign.run(trials).aborted;
  }
  ASSERT_TRUE(finished) << "campaign never completed across 25 resumes";

  // And the crash-riddled campaign still committed the fault-free results.
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = kColumns;
  config.results_path = tmp_path("crashy_ref.csv");
  CampaignRunner campaign(chip, config);
  EXPECT_FALSE(campaign.run(trials).aborted);
  EXPECT_EQ(slurp(path), slurp(config.results_path));
}

TEST(CampaignRunner, RejectsKeysAndCellsThatWouldCorruptTheCheckpoint) {
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = {"value"};
  CampaignRunner campaign(chip, config);
  const std::vector<CampaignRunner::Trial> bad_key = {
      {"a,b", [](bender::ChipSession&) -> std::vector<std::string> {
         return {"1"};
       }}};
  EXPECT_THROW((void)campaign.run(bad_key), std::invalid_argument);
  const std::vector<CampaignRunner::Trial> bad_cell = {
      {"ok", [](bender::ChipSession&) -> std::vector<std::string> {
         return {"1,2"};
       }}};
  EXPECT_THROW((void)campaign.run(bad_cell), std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::runner
