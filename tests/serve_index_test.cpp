// `.hbmidx` format contract (docs/SERVING.md):
//
//   * round-trip: what the builder records is what the loader serves,
//     including kNoFlip rungs, gap rows, retention populations, and the
//     weakest-row heads;
//   * rejection: ANY single-byte corruption, truncation, or trailing
//     garbage makes the loader throw IndexError — it never serves a cell
//     it cannot fully validate;
//   * durability (through fault::FaultyStore): a torn write, injected
//     EIO, or power cut during export leaves either the complete old or
//     the complete new index on disk, never a loadable corrupt one.
#include "serve/index.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "fault/faulty_store.h"
#include "util/store.h"

namespace hbmrd::serve {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "serve_index_test_" + name;
}

IndexManifest small_manifest(std::uint32_t hc_depth = 3) {
  IndexManifest manifest;
  manifest.platform_seed = 0x5EED;
  manifest.chip_index = 2;
  manifest.chip_label = "Chip 2";
  manifest.mapping_scheme = 0;
  manifest.channels = 8;
  manifest.pseudo_channels = 2;
  manifest.banks = 16;
  manifest.rows = 16384;
  manifest.row_bits = 8192;
  manifest.hc_depth = hc_depth;
  manifest.max_hammer_count = 1u << 20;
  return manifest;
}

/// Two threshold populations + one retention population, with a gap row.
IndexBuilder small_builder() {
  IndexBuilder builder(small_manifest());
  const PopulationKey checkered{0, 0, 0, 2, 0};
  builder.set_rung(checkered, 100, 1, 50000);
  builder.set_rung(checkered, 100, 2, 61000);
  builder.set_rung(checkered, 100, 3, kNoFlip);
  builder.set_rung(checkered, 102, 1, 40000);  // row 101 is a gap
  const PopulationKey on_time{1, 1, 3, 0, 777};
  builder.set_rung(on_time, 5, 1, 33000);
  const PopulationKey retention{0, 0, 0, kRetentionPatternId, 0};
  builder.set_retention(retention, 100, 1.52e2);
  builder.set_retention(retention, 101, 97.25);
  return builder;
}

TEST(ServeIndex, RoundTripsRecordsHeadsAndManifest) {
  const auto image = small_builder().serialize();
  const auto index = Index::parse(image, "mem");

  const auto& m = index.manifest();
  EXPECT_EQ(m.platform_seed, 0x5EEDu);
  EXPECT_EQ(m.chip_index, 2u);
  EXPECT_EQ(m.chip_label, "Chip 2");
  EXPECT_EQ(m.hc_depth, 3u);
  EXPECT_EQ(m.record_size(), 12u + 8u * 3u);
  ASSERT_EQ(index.populations().size(), 3u);

  const auto* checkered = index.find({0, 0, 0, 2, 0});
  ASSERT_NE(checkered, nullptr);
  EXPECT_EQ(checkered->row_lo, 100u);
  EXPECT_EQ(checkered->row_hi, 103u);
  const auto row100 = index.record(*checkered, 100);
  EXPECT_EQ(row100.rung_count(), 3);
  EXPECT_EQ(row100.rung(1), 50000u);
  EXPECT_EQ(row100.rung(2), 61000u);
  EXPECT_EQ(row100.rung(3), kNoFlip);
  EXPECT_FALSE(row100.has_retention());
  // The gap row materializes as an empty record, not as absent coverage.
  const auto row101 = index.record(*checkered, 101);
  EXPECT_EQ(row101.rung_count(), 0);
  EXPECT_FALSE(row101.has_retention());
  // Heads: sorted ascending by HC_first -> row 102 (40000) first.
  ASSERT_EQ(checkered->heads.size(), 2u);
  EXPECT_EQ(checkered->heads[0].row, 102u);
  EXPECT_EQ(checkered->heads[0].hc_first, 40000u);
  EXPECT_EQ(checkered->heads[1].row, 100u);

  const auto* on_time = index.find({1, 1, 3, 0, 777});
  ASSERT_NE(on_time, nullptr);
  EXPECT_EQ(index.record(*on_time, 5).rung(1), 33000u);

  const auto* retention = index.find({0, 0, 0, kRetentionPatternId, 0});
  ASSERT_NE(retention, nullptr);
  const auto ret100 = index.record(*retention, 100);
  EXPECT_TRUE(ret100.has_retention());
  EXPECT_DOUBLE_EQ(ret100.retention_s(), 1.52e2);
  EXPECT_EQ(ret100.rung_count(), 0);

  EXPECT_EQ(index.find({7, 0, 0, 2, 0}), nullptr);
}

TEST(ServeIndex, SerializationIsDeterministic) {
  EXPECT_EQ(small_builder().serialize(), small_builder().serialize());
}

TEST(ServeIndex, RejectsEverySingleByteCorruption) {
  const auto image = small_builder().serialize();
  // Every byte of the file sits under the magic check or a section CRC,
  // so any single-byte flip must be caught. (The whole-file sweep is
  // cheap: the test image is a few KB.)
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    auto corrupt = image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x41);
    EXPECT_THROW((void)Index::parse(corrupt, "mem"), IndexError)
        << "byte " << i << " corruption was served";
    ++rejected;
  }
  EXPECT_EQ(rejected, image.size());
}

TEST(ServeIndex, RejectsTruncationAndTrailingGarbage) {
  const auto image = small_builder().serialize();
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{4}, std::size_t{7}, std::size_t{8},
        std::size_t{20}, image.size() / 2, image.size() - 1}) {
    EXPECT_THROW((void)Index::parse(image.substr(0, cut), "mem"),
                 IndexError)
        << "truncated at " << cut;
  }
  EXPECT_THROW((void)Index::parse(image + "x", "mem"), IndexError);
  EXPECT_THROW((void)Index::parse(image + std::string(16, '\0'), "mem"),
               IndexError);
  EXPECT_THROW((void)Index::parse("", "mem"), IndexError);
  EXPECT_THROW((void)Index::parse("not an index at all", "mem"),
               IndexError);
}

/// Splits a serialized image into magic + whole framed sections (header,
/// payload, and CRC trailer intact), so tests can splice CRC-valid
/// sections from different images.
std::vector<std::string> split_sections(const std::string& image) {
  std::vector<std::string> parts = {image.substr(0, 8)};
  std::size_t pos = 8;
  while (pos < image.size()) {
    std::uint64_t len = 0;
    for (int i = 0; i < 8; ++i) {
      len |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(image[pos + 4 + i]))
             << (8 * i);
    }
    const auto framed = 4 + 8 + static_cast<std::size_t>(len) + 4;
    parts.push_back(image.substr(pos, framed));
    pos += framed;
  }
  return parts;
}

TEST(ServeIndex, RejectsCrcValidButInconsistentSections) {
  // Splice CRC-valid sections from two different images: every section
  // passes its own CRC, so only the loader's cross-reference validation
  // (directory vs records sections) can reject the franken-file.
  IndexBuilder a(small_manifest());
  a.set_rung({0, 0, 0, 2, 0}, 100, 1, 50000);  // rows [100, 101): 1 record
  IndexBuilder b(small_manifest());
  b.set_rung({0, 0, 0, 2, 0}, 100, 1, 50000);
  b.set_rung({0, 0, 0, 2, 0}, 103, 1, 60000);  // rows [100, 104): 4 records
  // parts = [magic, manifest, directory, records].
  const auto parts_a = split_sections(a.serialize());
  const auto parts_b = split_sections(b.serialize());
  ASSERT_EQ(parts_a.size(), 4u);
  ASSERT_EQ(parts_b.size(), 4u);

  // B's directory (expects 4 records) over A's records section (holds 1).
  const auto franken =
      parts_b[0] + parts_b[1] + parts_b[2] + parts_a[3];
  EXPECT_THROW((void)Index::parse(franken, "mem"), IndexError);

  // A missing records section: directory count vs section count.
  EXPECT_THROW(
      (void)Index::parse(parts_b[0] + parts_b[1] + parts_b[2], "mem"),
      IndexError);

  // Swapped records sections in a two-population image: both sections are
  // CRC-valid but the directory's absolute offsets no longer match.
  IndexBuilder two(small_manifest());
  two.set_rung({0, 0, 0, 0, 0}, 10, 1, 1000);
  two.set_rung({1, 0, 0, 0, 0}, 10, 1, 2000);
  two.set_rung({1, 0, 0, 0, 0}, 11, 1, 2100);  // different section sizes
  const auto parts_two = split_sections(two.serialize());
  ASSERT_EQ(parts_two.size(), 5u);
  const auto swapped = parts_two[0] + parts_two[1] + parts_two[2] +
                       parts_two[4] + parts_two[3];
  EXPECT_THROW((void)Index::parse(swapped, "mem"), IndexError);
}

TEST(ServeIndex, WriteIsDurableThroughStore) {
  const auto path = tmp_path("durable.hbmidx");
  auto store = util::default_store();
  small_builder().write(*store, path);
  const auto loaded = Index::load(*store, path);
  EXPECT_EQ(loaded.populations().size(), 3u);
  EXPECT_THROW((void)Index::load(*store, tmp_path("missing.hbmidx")),
               IndexError);
  store->remove(path);
}

// -- FaultyStore schedules: the export never leaves a loadable corrupt
// index behind (satellite: .hbmidx durability).

TEST(ServeIndex, PowerCutDuringExportLeavesOldOrNewIndex) {
  const auto path = tmp_path("powercut.hbmidx");
  auto base = util::default_store();

  // Version 1 on disk.
  IndexBuilder v1(small_manifest());
  v1.set_rung({0, 0, 0, 2, 0}, 10, 1, 11111);
  v1.write(*base, path);
  const auto v1_bytes = *base->read(path);

  IndexBuilder v2(small_manifest());
  v2.set_rung({0, 0, 0, 2, 0}, 10, 1, 22222);
  v2.set_rung({0, 0, 0, 2, 0}, 11, 1, 33333);
  const auto v2_bytes = v2.serialize();

  // Crash at the replace write and at the replace fsync: both must leave
  // either complete version on disk, and whichever it is must load.
  for (const auto schedule : {1, 2}) {
    fault::StoreFaultConfig config;
    if (schedule == 1) {
      config.crash_at_write = 1;
    } else {
      config.crash_at_fsync = 1;
    }
    fault::FaultyStore faulty(base, 0xFA17 + schedule, config);
    EXPECT_THROW(v2.write(faulty, path), fault::StoreCrashError);
    const auto on_disk = base->read(path);
    ASSERT_TRUE(on_disk.has_value());
    EXPECT_TRUE(*on_disk == v1_bytes || *on_disk == v2_bytes)
        << "schedule " << schedule
        << " left neither complete version on disk";
    const auto reloaded = Index::load(*base, path);
    EXPECT_EQ(reloaded.manifest().hc_depth, 3u);
  }
  base->remove(path);
}

TEST(ServeIndex, InjectedWriteErrorSurfacesAndLeavesOldIndex) {
  const auto path = tmp_path("eio.hbmidx");
  auto base = util::default_store();
  IndexBuilder v1(small_manifest());
  v1.set_rung({0, 0, 0, 2, 0}, 10, 1, 11111);
  v1.write(*base, path);
  const auto v1_bytes = *base->read(path);

  fault::StoreFaultConfig config;
  config.write_error_rate = 1.0;  // every replace fails with EIO
  fault::FaultyStore faulty(base, 0xE10, config);
  IndexBuilder v2(small_manifest());
  v2.set_rung({0, 0, 0, 2, 0}, 10, 1, 22222);
  EXPECT_THROW(v2.write(faulty, path), util::StoreError);
  EXPECT_EQ(*base->read(path), v1_bytes);
  EXPECT_EQ(Index::load(*base, path)
                .record(*Index::load(*base, path).find({0, 0, 0, 2, 0}),
                        10)
                .rung(1),
            11111u);
  base->remove(path);
}

TEST(ServeIndex, TornOnDiskBytesAreRejectedNotServed) {
  // Model the no-atomic-replace counterfactual: any torn prefix of the
  // image (what a plain overwrite + power cut could leave) must be
  // rejected by the loader.
  const auto path = tmp_path("torn.hbmidx");
  auto store = util::default_store();
  const auto image = small_builder().serialize();
  for (const auto keep :
       {image.size() / 4, image.size() / 2, image.size() - 5}) {
    store->atomic_replace(path, std::string_view(image).substr(0, keep));
    EXPECT_THROW((void)Index::load(*store, path), IndexError)
        << "torn at " << keep;
  }
  store->remove(path);
}

TEST(ServeIndex, BuilderValidatesItsInputs) {
  IndexBuilder builder(small_manifest());
  EXPECT_THROW(builder.set_rung({0, 0, 0, 2, 0}, 0, 0, 1), IndexError);
  EXPECT_THROW(builder.set_rung({0, 0, 0, 2, 0}, 0, 4, 1), IndexError);
  EXPECT_THROW(builder.set_rung({0, 0, 0, 2, 0}, 20000, 1, 1), IndexError);
  EXPECT_THROW(builder.set_retention({0, 0, 0, 2, 0}, 20000, 1.0),
               IndexError);
  auto manifest = small_manifest();
  manifest.hc_depth = 0;
  EXPECT_THROW(IndexBuilder{manifest}, IndexError);
}

}  // namespace
}  // namespace hbmrd::serve
