// Storage layer: CRC32C, the Store abstraction, fault injection, and the
// record-level integrity helpers the crash-consistency protocol rests on.
//
// These are the unit-level guarantees: CRC32C matches the published test
// vector (so trailers are cross-checkable by standard tools), PosixStore's
// primitives do what their durability contract says, FaultyStore tears and
// crashes deterministically from its seed, and every record format
// (checkpoint row, journal line, manifest) round-trips and rejects
// corruption. The end-to-end crash/resume properties build on these in
// crash_consistency_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fault/faulty_store.h"
#include "runner/checkpoint.h"
#include "runner/journal.h"
#include "util/crc32c.h"
#include "util/csv.h"
#include "util/store.h"

namespace hbmrd {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "store_test_" + name;
}

struct TempFile {
  explicit TempFile(const std::string& name) : path(tmp_path(name)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// ---------------------------------------------------------------- crc32c

TEST(Crc32c, MatchesPublishedTestVector) {
  // The canonical CRC32C check value (RFC 3720 / "123456789").
  EXPECT_EQ(util::crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(util::crc32c(""), 0u);
}

TEST(Crc32c, ChainsIncrementally) {
  const auto whole = util::crc32c("hello world");
  const auto chained = util::crc32c(" world", util::crc32c("hello"));
  EXPECT_EQ(whole, chained);
}

TEST(Crc32c, HexRoundTripsAndRejectsMalformedInput) {
  const std::uint32_t crc = util::crc32c("payload");
  const auto hex = util::crc32c_hex(crc);
  EXPECT_EQ(hex.size(), 8u);
  std::uint32_t parsed = 0;
  ASSERT_TRUE(util::parse_crc32c_hex(hex, &parsed));
  EXPECT_EQ(parsed, crc);

  std::uint32_t out = 0;
  EXPECT_FALSE(util::parse_crc32c_hex("1234567", &out));    // short
  EXPECT_FALSE(util::parse_crc32c_hex("123456789", &out));  // long
  EXPECT_FALSE(util::parse_crc32c_hex("1234567G", &out));   // non-hex
  EXPECT_FALSE(util::parse_crc32c_hex("1234567F", &out));   // upper-case
}

// ------------------------------------------------------------ PosixStore

TEST(PosixStore, AppendReadTruncateRemoveRoundTrip) {
  TempFile temp("posix_roundtrip");
  util::PosixStore store;
  EXPECT_FALSE(store.read(temp.path).has_value());
  {
    auto file = store.open(temp.path, true);
    file->append("alpha\n");
    file->append("beta\n");
    file->sync();
  }
  EXPECT_EQ(store.read(temp.path).value(), "alpha\nbeta\n");

  // Re-open without truncation appends.
  store.open(temp.path, false)->append("gamma\n");
  EXPECT_EQ(store.read(temp.path).value(), "alpha\nbeta\ngamma\n");

  store.truncate(temp.path, 6);
  EXPECT_EQ(store.read(temp.path).value(), "alpha\n");

  EXPECT_TRUE(store.remove(temp.path));
  EXPECT_FALSE(store.remove(temp.path));
  EXPECT_FALSE(store.read(temp.path).has_value());
}

TEST(PosixStore, AtomicReplaceSwapsWholeContent) {
  TempFile temp("posix_replace");
  util::PosixStore store;
  store.atomic_replace(temp.path, "first version\n");
  EXPECT_EQ(store.read(temp.path).value(), "first version\n");
  store.atomic_replace(temp.path, "second\n");
  EXPECT_EQ(store.read(temp.path).value(), "second\n");
  // No temp-file droppings left behind.
  EXPECT_FALSE(store.read(temp.path + ".tmp").has_value());
}

TEST(PosixStore, OpenFailureIsDiagnosed) {
  util::PosixStore store;
  try {
    store.open("/nonexistent-dir/x", true);
    FAIL() << "expected StoreError";
  } catch (const util::StoreError& error) {
    EXPECT_EQ(error.op(), "open");
    EXPECT_NE(std::string(error.what()).find("/nonexistent-dir/x"),
              std::string::npos);
  }
}

// ------------------------------------------------------------ FaultyStore

fault::StoreFaultConfig crash_at_write(std::uint64_t n) {
  fault::StoreFaultConfig config;
  config.crash_at_write = n;
  return config;
}

TEST(FaultyStore, FaultFreePassThroughCountsOperations) {
  TempFile temp("faulty_clean");
  fault::FaultyStore store(util::default_store(), 1, {});
  auto file = store.open(temp.path, true);
  file->append("row\n");
  file->sync();
  store.atomic_replace(temp.path, "replaced\n");
  EXPECT_EQ(store.read(temp.path).value(), "replaced\n");
  EXPECT_EQ(store.stats().writes, 2u);  // append + replace
  EXPECT_EQ(store.stats().fsyncs, 2u);
  EXPECT_EQ(store.stats().replaces, 1u);
  EXPECT_EQ(store.stats().crashed, 0u);
}

TEST(FaultyStore, CrashRollsBackOnlyUnsyncedBytes) {
  TempFile temp("faulty_rollback");
  fault::FaultyStore store(util::default_store(), 7, crash_at_write(3));
  auto file = store.open(temp.path, true);
  file->append("durable-part\n");
  file->sync();  // fsynced: survives the power cut below
  file->append("at-risk\n");
  EXPECT_THROW(file->append("in-flight\n"), fault::StoreCrashError);
  EXPECT_TRUE(store.dead());
  EXPECT_EQ(store.stats().crashed, 1u);

  // The fsynced prefix survives intact; the un-synced tail tears at a
  // seeded byte offset somewhere in [0, tail length].
  const auto after = util::default_store()->read(temp.path).value();
  EXPECT_EQ(after.substr(0, 13), "durable-part\n");
  EXPECT_LE(after.size(), std::string("durable-part\nat-risk\nin-flight\n")
                              .size());
}

TEST(FaultyStore, CrashRollbackIsDeterministicPerSeed) {
  auto surviving = [](std::uint64_t seed) {
    TempFile temp("faulty_det");
    fault::FaultyStore store(util::default_store(), seed, crash_at_write(2));
    auto file = store.open(temp.path, true);
    file->append("0123456789\n");
    EXPECT_THROW(file->append("abcdefghij\n"), fault::StoreCrashError);
    return util::default_store()->read(temp.path).value();
  };
  EXPECT_EQ(surviving(42), surviving(42));
}

TEST(FaultyStore, DeadStoreRefusesEveryOperation) {
  TempFile temp("faulty_dead");
  auto store = std::make_shared<fault::FaultyStore>(util::default_store(), 3,
                                                    crash_at_write(1));
  auto file = store->open(temp.path, true);
  EXPECT_THROW(file->append("x"), fault::StoreCrashError);
  EXPECT_THROW(file->append("y"), fault::StoreCrashError);
  EXPECT_THROW(file->sync(), fault::StoreCrashError);
  EXPECT_THROW((void)store->open(temp.path, false), fault::StoreCrashError);
  EXPECT_THROW((void)store->read(temp.path), fault::StoreCrashError);
  EXPECT_THROW(store->atomic_replace(temp.path, "z"),
               fault::StoreCrashError);
  EXPECT_THROW((void)store->remove(temp.path), fault::StoreCrashError);
}

TEST(FaultyStore, WriteErrorsTearAtMostAPrefix) {
  TempFile temp("faulty_errors");
  fault::StoreFaultConfig config;
  config.write_error_rate = 1.0;  // every append draws a fault
  fault::FaultyStore store(util::default_store(), 11, config);
  auto file = store.open(temp.path, true);
  const std::string payload = "one-full-record\n";
  for (int i = 0; i < 8; ++i) {
    EXPECT_THROW(file->append(payload), fault::StoreFaultError);
  }
  EXPECT_EQ(store.stats().write_errors, 8u);
  EXPECT_FALSE(store.dead());  // I/O errors are survivable, crashes are not

  // Whatever landed is a concatenation of strict prefixes — never more
  // bytes than were offered.
  const auto landed = util::default_store()->read(temp.path).value();
  EXPECT_LT(landed.size(), payload.size() * 8);
}

TEST(FaultyStore, CrashDuringAtomicReplaceKeepsOldFile) {
  TempFile temp("faulty_replace_crash");
  util::default_store()->atomic_replace(temp.path, "old content\n");
  fault::StoreFaultConfig config;
  config.crash_at_fsync = 1;  // dies fsyncing the temp file
  fault::FaultyStore store(util::default_store(), 5, config);
  EXPECT_THROW(store.atomic_replace(temp.path, "new content\n"),
               fault::StoreCrashError);
  EXPECT_EQ(util::default_store()->read(temp.path).value(), "old content\n");
}

// ------------------------------------------- CRC-trailed record formats

TEST(CsvWriterCrc, DataRowsCarryVerifiableTrailers) {
  TempFile temp("csv_crc");
  {
    util::CsvWriter csv(temp.path, {"trial", "value"},
                        util::CsvWriter::Options{
                            util::CsvWriter::Mode::kTruncate, true, nullptr});
    csv.row({"row64", "17"});
    csv.row({"row72", "0"});
  }
  const auto text = util::default_store()->read(temp.path).value();
  std::vector<std::string> lines;
  for (std::size_t at = 0; at < text.size();) {
    const auto end = text.find('\n', at);
    lines.push_back(text.substr(at, end - at));
    at = end + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  // The header names the crc column but is not itself trailed (its
  // integrity is covered by the manifest digest).
  EXPECT_EQ(lines[0], "trial,value,crc");
  EXPECT_FALSE(util::verify_csv_row_crc(lines[0]));
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view payload;
    EXPECT_TRUE(util::verify_csv_row_crc(lines[i], &payload));
    EXPECT_EQ(payload.substr(0, 5), i == 1 ? "row64" : "row72");
    // Any single-byte flip must be detected.
    std::string bad = lines[i];
    bad[2] ^= 1;
    EXPECT_FALSE(util::verify_csv_row_crc(bad));
  }
}

TEST(JournalCrc, EventLinesVerifyAndExposeFields) {
  TempFile temp("journal_crc");
  {
    runner::Journal journal(temp.path, false);
    journal.event("trial-ok").field("trial", "row64").field("attempts", 2);
    journal.flush();
  }
  const auto text = util::default_store()->read(temp.path).value();
  ASSERT_FALSE(text.empty());
  const std::string_view line(text.data(), text.find('\n'));
  std::string_view payload;
  EXPECT_TRUE(runner::verify_journal_line(line, &payload));
  EXPECT_EQ(runner::journal_line_field(line, "event"), "trial-ok");
  EXPECT_EQ(runner::journal_line_field(line, "trial"), "row64");
  EXPECT_EQ(runner::journal_line_field(line, "missing"), "");

  std::string bad(line);
  bad[bad.find("row64")] = 'X';
  EXPECT_FALSE(runner::verify_journal_line(bad));
  EXPECT_FALSE(runner::verify_journal_line("not json at all"));
  EXPECT_FALSE(runner::verify_journal_line(""));
}

TEST(Manifest, RoundTripsAndRejectsCorruption) {
  runner::Manifest manifest;
  manifest.header_crc = util::crc32c("trial,value,crc");
  manifest.fault_seed = 0xDEADBEEFu;
  manifest.trial_count = 12;
  manifest.trials_crc = util::crc32c("a\nb");
  manifest.incarnations = 3;

  const auto text = manifest.serialize();
  EXPECT_EQ(text.back(), '\n');
  const auto parsed = runner::Manifest::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header_crc, manifest.header_crc);
  EXPECT_EQ(parsed->fault_seed, manifest.fault_seed);
  EXPECT_EQ(parsed->trial_count, manifest.trial_count);
  EXPECT_EQ(parsed->trials_crc, manifest.trials_crc);
  EXPECT_EQ(parsed->incarnations, manifest.incarnations);

  // A corrupt manifest is treated as missing, never trusted.
  std::string bad = text;
  bad[bad.size() / 2] ^= 0x20;
  EXPECT_FALSE(runner::Manifest::parse(bad).has_value());
  EXPECT_FALSE(runner::Manifest::parse("").has_value());
  EXPECT_FALSE(runner::Manifest::parse("garbage\n").has_value());

  EXPECT_EQ(runner::Manifest::path_for("results.csv"),
            "results.csv.manifest");
}

// --------------------------------------------------- checkpoint scanning

TEST(LoadCheckpoint, QuarantinesMidFileCorruptionTruncatesTornTail) {
  TempFile temp("scan_checkpoint");
  const auto row = [](const std::string& key, const std::string& value) {
    std::string line = key + "," + value;
    return line + "," + util::crc32c_hex(util::crc32c(line)) + "\n";
  };
  std::string text = "trial,value,crc\n";
  text += row("a", "1");
  std::string corrupt = row("b", "2");
  corrupt[2] ^= 1;  // mid-file bit rot
  text += corrupt;
  text += row("c", "3");
  text += row("d", "4").substr(0, 5);  // torn tail: partial final record
  util::default_store()->atomic_replace(temp.path, text);

  util::PosixStore store;
  const auto scan = runner::load_checkpoint(store, temp.path, 3);
  EXPECT_TRUE(scan.existed);
  EXPECT_EQ(scan.found_header, "trial,value,crc");
  ASSERT_EQ(scan.keys.size(), 2u);
  EXPECT_EQ(scan.keys[0], "a");
  EXPECT_EQ(scan.keys[1], "c");
  EXPECT_EQ(scan.corrupt_rows, 1u);
  ASSERT_EQ(scan.corrupt_keys.size(), 1u);
  EXPECT_TRUE(scan.tail_truncated);
}

TEST(ScanJournal, TruncatesAtFirstInvalidLine) {
  TempFile temp("scan_journal");
  {
    runner::Journal journal(temp.path, false);
    journal.event("campaign-begin").field("trials", 2);
    journal.event("trial-ok").field("trial", "a");
    journal.event("trial-ok").field("trial", "b");
    journal.flush();
  }
  // Corrupt the middle line: the journal is a sequence of blocks, so
  // everything after the first bad line is dropped.
  auto text = util::default_store()->read(temp.path).value();
  text[text.find("\"trial\":\"a\"") + 9] = 'Z';
  util::default_store()->atomic_replace(temp.path, text);

  util::PosixStore store;
  const auto scan = runner::scan_journal(store, temp.path);
  EXPECT_TRUE(scan.existed);
  ASSERT_EQ(scan.lines.size(), 1u);
  EXPECT_EQ(scan.events[0], "campaign-begin");
  EXPECT_TRUE(scan.has_begin);
  EXPECT_EQ(scan.dropped, 2u);
}

TEST(ScanJournal, EmptyFileExistsButMissingFileDoesNot) {
  TempFile temp("scan_empty");
  util::PosixStore store;
  EXPECT_FALSE(runner::scan_journal(store, temp.path).existed);
  // A power cut can roll a journal back to zero bytes; recovery must still
  // see "a journal existed" and distrust checkpoint rows without blocks.
  store.atomic_replace(temp.path, "");
  EXPECT_TRUE(runner::scan_journal(store, temp.path).existed);
}

}  // namespace
}  // namespace hbmrd
