// The zipf trace's rank -> physical-row placement: collision-free by
// construction (a seeded Feistel permutation of the bank), deterministic
// per seed, and seed-sensitive.
//
// Regression pinned here: the old placement hashed each rank independently
// (`hash_key(seed, rank) % kRowsPerBank`), so distinct popularity ranks
// could collide on one physical row. A collision merges two zipf ranks
// into a single hotter-than-modeled row — the trace's working set shrinks
// below the configured size and its head gets artificially hot, which is
// exactly what a defense-evaluation workload must not do.
#include "workload/traces.h"

#include <gtest/gtest.h>

#include <set>

namespace hbmrd::workload {
namespace {

TEST(ZipfRowMapping, PermutationIsCollisionFree) {
  // The full domain: every rank in the bank lands on a distinct row, so
  // the mapping is a bijection of [0, kRowsPerBank).
  std::set<int> rows;
  for (int rank = 0; rank < dram::kRowsPerBank; ++rank) {
    const int row = zipf_rank_to_row(0xFEE7, rank);
    ASSERT_GE(row, 0);
    ASSERT_LT(row, dram::kRowsPerBank);
    rows.insert(row);
  }
  EXPECT_EQ(rows.size(), static_cast<std::size_t>(dram::kRowsPerBank));
}

TEST(ZipfRowMapping, DeterministicPerSeedAndSeedSensitive) {
  int differing = 0;
  for (int rank = 0; rank < 2048; ++rank) {
    EXPECT_EQ(zipf_rank_to_row(7, rank), zipf_rank_to_row(7, rank));
    if (zipf_rank_to_row(7, rank) != zipf_rank_to_row(8, rank)) ++differing;
  }
  // Two seeds give (near-)disjoint placements, not a shifted copy.
  EXPECT_GT(differing, 1900);
}

TEST(ZipfTrace, WorkingSetMatchesTheConfiguredDistinctRows) {
  // Enough draws that every rank of a small working set is hit: with
  // collision-free placement the trace touches *exactly* the configured
  // number of rows. (The old hashing placement fell short whenever two
  // ranks collided.)
  TraceConfig config;
  config.activations = 200'000;
  config.seed = 3;
  const auto stats = analyze(zipf_trace(config, 1.1, 512));
  EXPECT_EQ(stats.distinct_rows, 512u);
}

TEST(ZipfTrace, PlacementFollowsTheSeed) {
  TraceConfig config;
  config.activations = 20'000;
  config.seed = 1;
  const auto a = analyze(zipf_trace(config));
  config.seed = 2;
  const auto b = analyze(zipf_trace(config));
  // The head rank (hottest row) moves with the seed; its popularity mass
  // does not.
  EXPECT_NE(a.hottest_row, b.hottest_row);
  EXPECT_EQ(a.hottest_row, zipf_rank_to_row(1, 0));
  EXPECT_EQ(b.hottest_row, zipf_rank_to_row(2, 0));
}

}  // namespace
}  // namespace hbmrd::workload
