#include "study/patterns.h"

#include <gtest/gtest.h>

namespace hbmrd::study {
namespace {

TEST(Patterns, Table1Bytes) {
  // Table 1 of the paper.
  EXPECT_EQ(victim_byte(DataPattern::kRowstripe0), 0x00);
  EXPECT_EQ(aggressor_byte(DataPattern::kRowstripe0), 0xFF);
  EXPECT_EQ(victim_byte(DataPattern::kRowstripe1), 0xFF);
  EXPECT_EQ(aggressor_byte(DataPattern::kRowstripe1), 0x00);
  EXPECT_EQ(victim_byte(DataPattern::kCheckered0), 0x55);
  EXPECT_EQ(aggressor_byte(DataPattern::kCheckered0), 0xAA);
  EXPECT_EQ(victim_byte(DataPattern::kCheckered1), 0xAA);
  EXPECT_EQ(aggressor_byte(DataPattern::kCheckered1), 0x55);
}

TEST(Patterns, AggressorIsAlwaysComplement) {
  for (auto pattern : kAllPatterns) {
    EXPECT_EQ(victim_byte(pattern) ^ aggressor_byte(pattern), 0xFF);
    EXPECT_EQ(victim_row_bits(pattern).count_diff(
                  aggressor_row_bits(pattern)),
              dram::kRowBits);
  }
}

TEST(Patterns, Names) {
  EXPECT_EQ(to_string(DataPattern::kRowstripe0), "Rowstripe0");
  EXPECT_EQ(to_string(DataPattern::kCheckered1), "Checkered1");
}

TEST(Wcdp, PicksSmallestHcFirst) {
  // HC_first: Checkered0 (index 2) smallest.
  const std::array<std::uint64_t, 4> hc = {50000, 60000, 30000, 40000};
  const std::array<double, 4> ber = {0.001, 0.001, 0.001, 0.001};
  EXPECT_EQ(select_wcdp(hc, ber), DataPattern::kCheckered0);
}

TEST(Wcdp, BreaksTiesByBer) {
  const std::array<std::uint64_t, 4> hc = {30000, 30000, 30000, 30000};
  const std::array<double, 4> ber = {0.001, 0.004, 0.002, 0.003};
  EXPECT_EQ(select_wcdp(hc, ber), DataPattern::kRowstripe1);
}

TEST(Wcdp, NoBitflipLosesToAnyRealValue) {
  const std::array<std::uint64_t, 4> hc = {0, 0, 900000, 0};
  const std::array<double, 4> ber = {0.0, 0.0, 0.0001, 0.0};
  EXPECT_EQ(select_wcdp(hc, ber), DataPattern::kCheckered0);
}

TEST(Wcdp, AllZeroFallsBackToBer) {
  const std::array<std::uint64_t, 4> hc = {0, 0, 0, 0};
  const std::array<double, 4> ber = {0.0, 0.0, 0.0, 0.001};
  EXPECT_EQ(select_wcdp(hc, ber), DataPattern::kCheckered1);
}

}  // namespace
}  // namespace hbmrd::study
