#include "study/bypass.h"

#include <gtest/gtest.h>

#include "bender/platform.h"

namespace hbmrd::study {
namespace {

TEST(BypassPlan, SplitsTheActivationBudget) {
  const dram::TimingParams timing;
  BypassConfig config;
  config.dummy_rows = 4;
  config.aggressor_acts = 18;
  const auto plan = plan_bypass(timing, config);
  EXPECT_EQ(plan.total_budget, 78);
  EXPECT_EQ(plan.aggressor_acts_total, 36);
  EXPECT_EQ(plan.dummy_acts_total, 42);
  // Paper: floor((78 - 18 * 2) / 4) = 10 activations per dummy row.
  EXPECT_EQ(plan.acts_per_dummy, 10);
}

TEST(BypassPlan, RejectsOverBudgetConfigs) {
  const dram::TimingParams timing;
  BypassConfig config;
  config.aggressor_acts = 39;  // 78 activations: no dummy budget left
  EXPECT_THROW(plan_bypass(timing, config), std::invalid_argument);
  config.aggressor_acts = 18;
  config.dummy_rows = 0;
  EXPECT_THROW(plan_bypass(timing, config), std::invalid_argument);
}

struct BypassFixture : ::testing::Test {
  bender::Platform platform;
  bender::HbmChip& chip = platform.chip(0);  // the TRR-protected chip
  AddressMap map = AddressMap::from_scheme(chip.profile().mapping);
  dram::RowAddress victim{{0, 0, 0}, 4301};
};

TEST_F(BypassFixture, FourDummiesBypassTheTrr) {
  BypassConfig config;
  config.dummy_rows = 4;
  config.aggressor_acts = 34;
  config.windows = 8205;  // one refresh window keeps the test fast
  const auto result = run_bypass_attack(chip, map, victim, config);
  EXPECT_GT(result.bitflips, 0);
}

TEST_F(BypassFixture, ThreeDummiesAreNeutralized) {
  BypassConfig config;
  config.dummy_rows = 3;
  config.aggressor_acts = 34;
  config.windows = 8205;
  const auto result = run_bypass_attack(chip, map, victim, config);
  EXPECT_EQ(result.bitflips, 0);
}

TEST_F(BypassFixture, MoreAggressorActsMoreBitflips) {
  BypassConfig low;
  low.dummy_rows = 8;
  low.aggressor_acts = 18;
  low.windows = 8205;
  BypassConfig high = low;
  high.aggressor_acts = 34;
  const auto weak = run_bypass_attack(chip, map, victim, low);
  const auto strong = run_bypass_attack(chip, map, victim, high);
  EXPECT_LE(weak.bitflips, strong.bitflips);
  EXPECT_GT(strong.bitflips, 0);
}

TEST_F(BypassFixture, UnprotectedChipFlipsEvenWithFewDummies) {
  auto& open_chip = platform.chip(2);
  const auto open_map =
      AddressMap::from_scheme(open_chip.profile().mapping);
  BypassConfig config;
  config.dummy_rows = 2;  // would fail against the TRR
  config.aggressor_acts = 34;
  config.windows = 8205;
  const auto result =
      run_bypass_attack(open_chip, open_map, victim, config);
  EXPECT_GT(result.bitflips, 0);
}

TEST_F(BypassFixture, EdgeVictimRejected) {
  BypassConfig config;
  EXPECT_THROW(
      run_bypass_attack(chip, map, dram::RowAddress{{0, 0, 0}, 0}, config),
      std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::study
