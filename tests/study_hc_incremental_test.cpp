// Checkpointed incremental-dose HC search (study/ber_probe.h).
//
// Contract under test: the incremental engine is an invisible perf
// optimization. HC values, per-probe flip sets, campaign CSV checkpoints
// and JSONL journals are byte-identical to the from-scratch reference path
// — across chips (including chip 0's undocumented TRR), data patterns,
// aggressor on-times, fault plans, --jobs counts, and kill + resume — while
// executing several times fewer simulated activations (study.hammers_saved
// / study.hammers_replayed).
#include "study/ber_probe.h"

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "bender/platform.h"
#include "runner/runner.h"
#include "study/hc_first.h"
#include "study/hcn.h"

namespace hbmrd::study {
namespace {

constexpr dram::BankAddress kBank{0, 0, 0};

HcSearchConfig search_config(bool incremental) {
  HcSearchConfig config;
  config.incremental = incremental;
  return config;
}

/// Runs one find_hc_nth against a fresh platform chip, returning the result
/// plus the session's probe counters (fresh chip per call so both modes
/// start from the identical canonical state).
struct SearchRun {
  std::optional<std::uint64_t> hc;
  bender::ProbeCounters probes;
};

SearchRun run_search(int chip_index, const dram::RowAddress& victim, int n,
                     HcSearchConfig config) {
  bender::Platform platform;
  auto& chip = platform.chip(chip_index);
  const auto map = AddressMap::from_scheme(chip.profile().mapping);
  SearchRun run;
  run.hc = find_hc_nth(chip, map, victim, n, config);
  run.probes = chip.probe_counters();
  return run;
}

TEST(HcIncremental, MatchesScratchAcrossRowsAndPatterns) {
  for (const int row : {4300, 64, 8000}) {
    for (const auto pattern : {DataPattern::kCheckered0,
                               DataPattern::kRowstripe0}) {
      auto scratch = search_config(false);
      scratch.pattern = pattern;
      auto incremental = search_config(true);
      incremental.pattern = pattern;
      const dram::RowAddress victim{kBank, row};
      const auto a = run_search(2, victim, 1, scratch);
      const auto b = run_search(2, victim, 1, incremental);
      ASSERT_TRUE(a.hc.has_value()) << "row " << row;
      EXPECT_EQ(*a.hc, *b.hc) << "row " << row;
      EXPECT_EQ(a.probes.hammers_saved, 0u);
      EXPECT_GT(b.probes.hammers_saved, 0u);
    }
  }
}

TEST(HcIncremental, MatchesScratchOnTrrChipAndHigherN) {
  // Chip 0 carries the undocumented in-DRAM TRR; its sampler state rides
  // along in the checkpoints (ReadDisturbDefense::clone()).
  const dram::RowAddress victim{kBank, 4300};
  for (const int n : {1, 3}) {
    const auto a = run_search(0, victim, n, search_config(false));
    const auto b = run_search(0, victim, n, search_config(true));
    ASSERT_EQ(a.hc.has_value(), b.hc.has_value()) << "n " << n;
    if (a.hc) EXPECT_EQ(*a.hc, *b.hc) << "n " << n;
  }
}

TEST(HcIncremental, MatchesScratchAtLongAggressorOnTime) {
  // RowPress-shaped search (fig13): longer tAggON, tighter search bound.
  auto scratch = search_config(false);
  scratch.on_cycles = 200;
  scratch.max_hammer_count = 1u << 18;
  auto incremental = scratch;
  incremental.incremental = true;
  const dram::RowAddress victim{kBank, 4300};
  const auto a = run_search(2, victim, 1, scratch);
  const auto b = run_search(2, victim, 1, incremental);
  ASSERT_TRUE(a.hc.has_value());
  EXPECT_EQ(*a.hc, *b.hc);
}

TEST(HcIncremental, RespectsSearchBoundLikeScratch) {
  auto config = search_config(true);
  config.max_hammer_count = 2000;  // far below any real HC_first here
  const auto run = run_search(2, {kBank, 4300}, 1, config);
  EXPECT_FALSE(run.hc.has_value());
}

TEST(HcIncremental, HcnSequenceMatchesScratch) {
  const dram::RowAddress victim{kBank, 4300};
  HcnResult results[2];
  for (const bool incremental : {false, true}) {
    bender::Platform platform;
    auto& chip = platform.chip(2);
    const auto map = AddressMap::from_scheme(chip.profile().mapping);
    results[incremental] =
        measure_hcn(chip, map, victim, search_config(incremental));
  }
  for (int k = 0; k < kHcnFlips; ++k) {
    ASSERT_EQ(results[0].hc[k].has_value(), results[1].hc[k].has_value())
        << "k " << k;
    if (results[0].hc[k]) EXPECT_EQ(*results[0].hc[k], *results[1].hc[k]);
  }
}

TEST(HcIncremental, ProbeFlipSetsMatchScratchProbeForProbe) {
  // The full per-probe BER results — not just the search endpoints — must
  // match, including a bisection-shaped descent and a memoized re-probe.
  const dram::RowAddress victim{kBank, 4300};
  const std::vector<std::uint64_t> counts = {1,     1024,  4096, 16384,
                                             65536, 49152, 16384};
  std::vector<RowBerResult> results[2];
  for (const bool incremental : {false, true}) {
    bender::Platform platform;
    auto& chip = platform.chip(2);
    const auto map = AddressMap::from_scheme(chip.profile().mapping);
    BerProbe probe(chip, map, victim, BerConfig{}, incremental);
    EXPECT_EQ(probe.incremental(), incremental);
    for (const auto count : counts) {
      results[incremental].push_back(probe.measure(count));
    }
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(results[0][i].bitflips, results[1][i].bitflips)
        << "count " << counts[i];
    EXPECT_EQ(results[0][i].flipped_bits, results[1][i].flipped_bits)
        << "count " << counts[i];
  }
}

TEST(HcIncremental, MemoNeverProbesTheSameCountTwice) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  const auto map = AddressMap::from_scheme(chip.profile().mapping);
  BerProbe probe(chip, map, {kBank, 4300}, BerConfig{}, true);
  probe.measure(4096);
  const auto probes_before = chip.probe_counters().hc_probes;
  const auto replayed_before = chip.probe_counters().hammers_replayed;
  probe.measure(4096);
  EXPECT_EQ(chip.probe_counters().hc_probes, probes_before);
  EXPECT_EQ(chip.probe_counters().hammers_replayed, replayed_before);
}

TEST(HcIncremental, SavesAtLeastFiveXActivationsOnHcFirst) {
  const dram::RowAddress victim{kBank, 4300};
  const auto scratch = run_search(2, victim, 1, search_config(false));
  const auto incremental = run_search(2, victim, 1, search_config(true));
  ASSERT_TRUE(scratch.hc.has_value());
  EXPECT_EQ(scratch.probes.hc_probes, incremental.probes.hc_probes);
  EXPECT_EQ(scratch.probes.hammers_replayed,
            incremental.probes.hammers_replayed +
                incremental.probes.hammers_saved);
  EXPECT_GE(scratch.probes.hammers_replayed,
            5 * incremental.probes.hammers_replayed);
}

// ---------------------------------------------------------------------------
// Device checkpoint layer (ChipSession::checkpoint()/restore()).

TEST(DoseCheckpoint, RestoreRewindsRowsTouchedSincePush) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  ASSERT_TRUE(chip.supports_checkpoints());

  const dram::RowAddress victim{kBank, 4300};
  const auto pattern = dram::RowBits::filled(0x55);
  chip.write_row(victim, pattern);
  chip.write_row({kBank, 4299}, dram::RowBits::filled(0xAA));
  chip.write_row({kBank, 4301}, dram::RowBits::filled(0xAA));

  const auto id = chip.checkpoint();
  const std::array<int, 2> aggressors = {4299, 4301};
  chip.hammer(kBank, aggressors, 400000);
  const auto hammered = chip.read_row(victim);
  EXPECT_GT(hammered.count_diff(pattern), 0);

  chip.restore(id);
  // The accumulated dose is gone: reading the victim right after the
  // restore senses the pre-hammer state.
  EXPECT_EQ(chip.read_row(victim), pattern);
}

TEST(DoseCheckpoint, CapturesOnlyTouchedRows) {
  // The COW layer must collect pre-images for the handful of rows a probe
  // touches, not snapshot the 16384-row bank: rows the post-push program
  // never references keep their state object untouched across restore.
  bender::Platform platform;
  auto& chip = platform.chip(2);
  const auto& bank = chip.stack().bank(kBank);

  chip.write_row({kBank, 100}, dram::RowBits::filled(0x11));
  chip.write_row({kBank, 9000}, dram::RowBits::filled(0x22));
  const auto touched_before = bank.touched_rows();

  const auto id = chip.checkpoint();
  chip.write_row({kBank, 200}, dram::RowBits::filled(0x33));
  chip.restore(id);

  // Row 200's state object was created after the push and is erased by the
  // restore; rows 100/9000 were never touched again and survive.
  EXPECT_EQ(bank.touched_rows(), touched_before);
  EXPECT_EQ(chip.read_row({kBank, 100}), dram::RowBits::filled(0x11));
  EXPECT_EQ(chip.read_row({kBank, 9000}), dram::RowBits::filled(0x22));
}

TEST(DoseCheckpoint, NestedLadderSupportsRestoreToAnyRung) {
  // Control: hammer straight through to 60k. Ladder: climb 20k -> 60k with
  // rungs, restore to the middle rung, re-climb the same delta — the
  // victim read must equal the control's.
  const dram::RowAddress victim{kBank, 4300};
  const auto pattern = dram::RowBits::filled(0x55);
  const std::array<int, 2> aggressors = {4299, 4301};

  const auto init = [&](bender::HbmChip& chip) {
    chip.write_row(victim, pattern);
    chip.write_row({kBank, 4299}, dram::RowBits::filled(0xAA));
    chip.write_row({kBank, 4301}, dram::RowBits::filled(0xAA));
  };

  bender::Platform control_platform;
  auto& control = control_platform.chip(2);
  init(control);
  control.hammer(kBank, aggressors, 600000);
  const auto expected = control.read_row(victim);

  bender::Platform ladder_platform;
  auto& chip = ladder_platform.chip(2);
  init(chip);
  const auto k0 = chip.checkpoint();
  chip.hammer(kBank, aggressors, 200000);
  const auto k1 = chip.checkpoint();
  chip.hammer(kBank, aggressors, 400000);
  chip.checkpoint();

  chip.restore(k1);  // discards the top rung, keeps k0 and k1
  chip.hammer(kBank, aggressors, 400000);
  EXPECT_EQ(chip.read_row(victim), expected);

  chip.restore(k0);  // rungs stay restorable repeatedly
  chip.hammer(kBank, aggressors, 200000);
  chip.hammer(kBank, aggressors, 400000);
  EXPECT_EQ(chip.read_row(victim), expected);
  chip.discard_checkpoints();
}

TEST(DoseCheckpoint, RestoreAfterPowerCycleIsRejected) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  const auto id = chip.checkpoint();
  chip.power_cycle();
  EXPECT_THROW(chip.restore(id), std::out_of_range);
}

TEST(DoseCheckpoint, RestoreOfDiscardedCheckpointIsRejected) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  const auto id = chip.checkpoint();
  chip.discard_checkpoints();
  EXPECT_THROW(chip.restore(id), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Campaign byte-identity (fig07-shaped sweep through the resilient runner).

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "study_hc_incremental_" + name;
}

std::vector<runner::CampaignRunner::Trial> hc_trials(bool incremental) {
  std::vector<runner::CampaignRunner::Trial> trials;
  const auto config = search_config(incremental);
  for (const int row : {4300, 64, 4308, 8000}) {
    trials.push_back(
        {"row" + std::to_string(row),
         [row, config](bender::ChipSession& session)
             -> std::vector<std::string> {
           const auto map =
               AddressMap::from_scheme(session.profile().mapping);
           const auto hc =
               find_hc_first(session, map, {kBank, row}, config);
           return {hc ? std::to_string(*hc) : ""};
         }});
  }
  return trials;
}

struct CampaignOutput {
  runner::CampaignReport report;
  std::string csv;
  std::string journal;
};

CampaignOutput run_hc_campaign(bool incremental, int jobs,
                               const std::string& tag, double fault_rate,
                               std::uint64_t stop_after = 0,
                               bool resume = false) {
  bender::HbmChip chip(dram::chip_profiles()[2]);
  runner::RunnerConfig config;
  config.result_columns = {"hc_first"};
  config.faults.transient_rate = fault_rate;
  config.results_path = tmp_path(tag + ".csv");
  config.journal_path = tmp_path(tag + ".jsonl");
  config.stop_after_trials = stop_after;
  config.resume = resume;
  config.jobs = jobs;
  runner::CampaignRunner campaign(chip, config);
  CampaignOutput out;
  out.report = campaign.run(hc_trials(incremental));
  out.csv = slurp(config.results_path);
  out.journal = slurp(config.journal_path);
  return out;
}

TEST(HcIncrementalCampaign, ByteIdenticalToScratchAcrossJobsAndFaults) {
  for (const double fault_rate : {0.0, 0.3}) {
    const auto tag = fault_rate > 0 ? std::string("f") : std::string("f0");
    const auto golden = run_hc_campaign(false, 1, tag + "_scratch",
                                        fault_rate);
    ASSERT_FALSE(golden.csv.empty());
    for (const int jobs : {1, 4}) {
      const auto fast = run_hc_campaign(
          true, jobs, tag + "_inc_j" + std::to_string(jobs), fault_rate);
      EXPECT_EQ(golden.csv, fast.csv)
          << "jobs " << jobs << " fault_rate " << fault_rate;
      EXPECT_EQ(golden.journal, fast.journal)
          << "jobs " << jobs << " fault_rate " << fault_rate;
      EXPECT_EQ(golden.report.campaign_seconds,
                fast.report.campaign_seconds);
      // Artifacts match while the device executed far fewer activations:
      // that asymmetry is the whole point (device counters are honest
      // telemetry of executed work, not part of the artifact contract).
      EXPECT_GE(golden.report.device_counters.activations,
                5 * fast.report.device_counters.activations);
    }
  }
}

TEST(HcIncrementalCampaign, KillAndResumeMatchesScratchGolden) {
  const auto golden = run_hc_campaign(false, 1, "kr_scratch", 0.3);
  // Kill the incremental run after 2 of 4 trials under jobs=4, then resume
  // on a fresh host; the stitched CSV must equal the uninterrupted scratch
  // run's.
  const auto part =
      run_hc_campaign(true, 4, "kr_inc", 0.3, /*stop_after=*/2);
  EXPECT_TRUE(part.report.aborted);
  const auto resumed = run_hc_campaign(true, 4, "kr_inc", 0.3,
                                       /*stop_after=*/0, /*resume=*/true);
  EXPECT_FALSE(resumed.report.aborted);
  EXPECT_EQ(resumed.report.resumed, 2u);
  EXPECT_EQ(golden.csv, resumed.csv);
}

}  // namespace
}  // namespace hbmrd::study
