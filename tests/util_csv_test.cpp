#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hbmrd::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct TempCsv {
  std::string path = "/tmp/hbmrd_csv_test.csv";
  ~TempCsv() { std::remove(path.c_str()); }
};

TEST(CsvWriter, WritesHeaderAndRows) {
  TempCsv temp;
  {
    CsvWriter csv(temp.path, {"a", "b"});
    csv.add().cell(1).cell(2.5);
    csv.add().cell("x").cell("y");
  }
  EXPECT_EQ(slurp(temp.path), "a,b\n1,2.5\nx,y\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  TempCsv temp;
  {
    CsvWriter csv(temp.path, {"c"});
    csv.add().cell("has,comma");
    csv.add().cell("has\"quote");
  }
  EXPECT_EQ(slurp(temp.path), "c\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvWriter, ValidatesShape) {
  TempCsv temp;
  CsvWriter csv(temp.path, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace hbmrd::util
