#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "runner/worker.h"

namespace hbmrd::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct TempCsv {
  std::string path = "/tmp/hbmrd_csv_test.csv";
  ~TempCsv() { std::remove(path.c_str()); }
};

TEST(CsvWriter, WritesHeaderAndRows) {
  TempCsv temp;
  {
    CsvWriter csv(temp.path, {"a", "b"});
    csv.add().cell(1).cell(2.5);
    csv.add().cell("x").cell("y");
  }
  EXPECT_EQ(slurp(temp.path), "a,b\n1,2.5\nx,y\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  TempCsv temp;
  {
    CsvWriter csv(temp.path, {"c"});
    csv.add().cell("has,comma");
    csv.add().cell("has\"quote");
  }
  EXPECT_EQ(slurp(temp.path), "c\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvWriter, ValidatesShape) {
  TempCsv temp;
  CsvWriter csv(temp.path, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST(SplitCsvLine, SplitsPlainAndEmptyCells) {
  EXPECT_EQ(split_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv_line("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split_csv_line(","), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split_csv_line("solo"), (std::vector<std::string>{"solo"}));
  EXPECT_TRUE(split_csv_line("").empty());
}

TEST(SplitCsvLine, UnquotesEmbeddedCommasAndQuotes) {
  EXPECT_EQ(split_csv_line("\"has,comma\",plain"),
            (std::vector<std::string>{"has,comma", "plain"}));
  EXPECT_EQ(split_csv_line("\"has\"\"quote\""),
            (std::vector<std::string>{"has\"quote"}));
  EXPECT_EQ(split_csv_line("\"a,\"\"b\"\",c\",d"),
            (std::vector<std::string>{"a,\"b\",c", "d"}));
}

TEST(SplitCsvLine, RoundTripsWriterEscaping) {
  for (const std::string cell :
       {"plain", "with,comma", "with\"quote", "\"leading", "a,\"b\",c"}) {
    const auto cells = split_csv_line(CsvWriter::serialize({cell, "x"}));
    ASSERT_EQ(cells.size(), 2u) << cell;
    EXPECT_EQ(cells[0], cell);
  }
}

TEST(SplitCsvLine, ToleratesCrlfLineEndings) {
  EXPECT_EQ(split_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_csv_line("\r"), std::vector<std::string>{});
  // A CR that is not a line terminator is data, not formatting.
  EXPECT_EQ(split_csv_line("a\rb,c"),
            (std::vector<std::string>{"a\rb", "c"}));
}

TEST(ValidateCsvCell, RejectsCellsThatWouldBreakKeyLookup) {
  // Trial keys and result cells are matched by string comparison on
  // resume, so the runner refuses cells whose escaped form would differ
  // from their raw form.
  EXPECT_NO_THROW(runner::validate_csv_cell("row64", "trial key"));
  EXPECT_NO_THROW(runner::validate_csv_cell("", "result cell"));
  EXPECT_NO_THROW(runner::validate_csv_cell("a b:c-d_e", "result cell"));
  for (const std::string bad : {"has,comma", "has\"quote", "has\nnewline"}) {
    try {
      runner::validate_csv_cell(bad, "trial key");
      FAIL() << "accepted: " << bad;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("trial key"),
                std::string::npos);
    }
  }
}

TEST(VerifyCsvRowCrc, AcceptsTrailedRowsRejectsEverythingElse) {
  TempCsv temp;
  {
    CsvWriter csv(temp.path, {"k", "v"},
                  CsvWriter::Options{CsvWriter::Mode::kTruncate, true,
                                     nullptr});
    csv.row({"key,with,commas", "17"});
  }
  const auto text = slurp(temp.path);
  const auto header_end = text.find('\n');
  const auto line = text.substr(header_end + 1,
                                text.find('\n', header_end + 1) -
                                    header_end - 1);
  std::string_view payload;
  ASSERT_TRUE(verify_csv_row_crc(line, &payload));
  EXPECT_EQ(payload, "\"key,with,commas\",17");
  // CRLF tolerated, same payload.
  EXPECT_TRUE(verify_csv_row_crc(line + "\r"));

  EXPECT_FALSE(verify_csv_row_crc(""));
  EXPECT_FALSE(verify_csv_row_crc("no-comma"));
  EXPECT_FALSE(verify_csv_row_crc("payload,notahexcrc"));
  std::string flipped = line;
  flipped[0] ^= 1;
  EXPECT_FALSE(verify_csv_row_crc(flipped));
}

}  // namespace
}  // namespace hbmrd::util
