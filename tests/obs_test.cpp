// Units for the observability layer: metrics registry, trace spans,
// progress reporter (with an injected clock), and the instrumented store
// decorator. The campaign-level determinism contract is covered by
// obs_campaign_test.cpp.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/instrumented_store.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/store.h"

namespace hbmrd::obs {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "obs_test_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(MetricsRegistry, CountersAccumulateAndReadBack) {
  MetricsRegistry metrics;
  EXPECT_FALSE(metrics.has_counter("a"));
  EXPECT_EQ(metrics.counter("a"), 0u);
  metrics.add("a", 2);
  metrics.add("a", 3);
  EXPECT_TRUE(metrics.has_counter("a"));
  EXPECT_EQ(metrics.counter("a"), 5u);
}

TEST(MetricsRegistry, KindIsFixedByFirstRegistration) {
  MetricsRegistry metrics;
  metrics.add("det", 1, MetricKind::kDeterministic);
  metrics.add("tel", 1, MetricKind::kTelemetry);
  metrics.add("det", 1, MetricKind::kDeterministic);  // same kind: fine
  EXPECT_THROW(metrics.add("det", 1, MetricKind::kTelemetry),
               std::logic_error);
  EXPECT_THROW(metrics.add("tel", 1, MetricKind::kDeterministic),
               std::logic_error);
}

TEST(MetricsRegistry, FingerprintIsSortedAndDeterministicOnly) {
  MetricsRegistry metrics;
  metrics.add("z.last", 1);
  metrics.add("a.first", 2);
  metrics.add("m.telemetry", 99, MetricKind::kTelemetry);
  metrics.set_gauge("gauge", 1.5);
  metrics.observe("hist", 0.5);
  EXPECT_EQ(metrics.deterministic_fingerprint(), "a.first=2\nz.last=1\n");
}

TEST(MetricsRegistry, JsonSnapshotHasTheContractedSections) {
  MetricsRegistry metrics;
  metrics.add("campaign.trials", 7);
  metrics.add("cache.hits", 3, MetricKind::kTelemetry);
  metrics.set_gauge("campaign.wall_s", 1.25);
  metrics.observe("trial.wall_s", 0.002);
  TraceRecorder trace;
  trace.record("campaign", 2.0);
  const auto json = metrics.to_json(&trace);
  for (const char* key :
       {"\"deterministic\"", "\"telemetry\"", "\"counters\"", "\"gauges\"",
        "\"histograms\"", "\"spans\"", "\"campaign.trials\": 7",
        "\"cache.hits\": 3", "\"campaign.wall_s\"", "\"trial.wall_s\"",
        "\"campaign\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  // Without a trace the spans section is omitted.
  EXPECT_EQ(metrics.to_json(nullptr).find("\"spans\""), std::string::npos);
}

TEST(MetricsRegistry, EqualRegistriesSerializeToEqualBytes) {
  MetricsRegistry a, b;
  // Different insertion order, same contents.
  a.add("x", 1);
  a.add("y", 2);
  b.add("y", 2);
  b.add("x", 1);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.deterministic_fingerprint(), b.deterministic_fingerprint());
}

TEST(MetricsRegistry, WriteSnapshotAtomicallyReplaces) {
  const auto path = tmp_path("snapshot.json");
  auto store = util::default_store();
  store->atomic_replace(path, "previous contents");
  MetricsRegistry metrics;
  metrics.add("k", 42);
  metrics.write_snapshot(*store, path);
  const auto contents = slurp(path);
  EXPECT_NE(contents.find("\"k\": 42"), std::string::npos) << contents;
  EXPECT_EQ(contents.find("previous"), std::string::npos);
}

TEST(Histogram, BucketsObservationsByBound) {
  Histogram h;
  h.bounds = {1.0, 10.0};
  h.counts.assign(3, 0);
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive upper bound)
  h.observe(5.0);   // <= 10
  h.observe(100.0);  // +inf bucket
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.total, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 106.5);
}

TEST(TraceRecorder, AggregatesByPath) {
  TraceRecorder trace;
  trace.record("campaign/trial", 2.0);
  trace.record("campaign/trial", 4.0);
  trace.record("campaign", 10.0);
  const auto trial = trace.span("campaign/trial");
  EXPECT_EQ(trial.count, 2u);
  EXPECT_DOUBLE_EQ(trial.total_s, 6.0);
  EXPECT_DOUBLE_EQ(trial.min_s, 2.0);
  EXPECT_DOUBLE_EQ(trial.max_s, 4.0);
  EXPECT_EQ(trace.span("campaign").count, 1u);
  EXPECT_EQ(trace.span("missing").count, 0u);
  EXPECT_EQ(trace.spans().size(), 2u);
}

TEST(SpanTimer, RecordsOnceAndNullRecorderIsANoOp) {
  TraceRecorder trace;
  {
    SpanTimer timer(&trace, "scope");
    timer.stop();
    timer.stop();  // idempotent
  }                // destructor after stop(): still one record
  EXPECT_EQ(trace.span("scope").count, 1u);
  {
    SpanTimer null_timer(nullptr, "scope");
  }  // must not crash or record
  EXPECT_EQ(trace.span("scope").count, 1u);
}

ProgressReporter::Options test_options(std::ostringstream* out,
                                       double* now) {
  ProgressReporter::Options options;
  options.min_interval_s = 1.0;
  options.out = out;
  options.clock = [now] { return *now; };
  return options;
}

TEST(ProgressReporter, RateLimitsUpdatesAndAlwaysEmitsFinish) {
  std::ostringstream out;
  double now = 100.0;
  ProgressReporter progress(test_options(&out, &now));
  progress.set_total(10);

  progress.update(1, 5, 0);  // first update emits immediately
  EXPECT_EQ(progress.lines_emitted(), 1u);
  now += 0.2;
  progress.update(2, 6, 1);  // inside the interval: suppressed
  EXPECT_EQ(progress.lines_emitted(), 1u);
  now += 1.0;
  progress.update(3, 7, 1);  // interval elapsed: emits
  EXPECT_EQ(progress.lines_emitted(), 2u);

  progress.finish();  // unconditional
  progress.finish();  // idempotent
  EXPECT_EQ(progress.lines_emitted(), 3u);

  const auto text = out.str();
  EXPECT_NE(text.find("progress:"), std::string::npos) << text;
  EXPECT_NE(text.find("3/10 trials"), std::string::npos) << text;
  EXPECT_NE(text.find("flips 7"), std::string::npos) << text;
  EXPECT_NE(text.find("retries 1"), std::string::npos) << text;
}

TEST(ProgressReporter, UnknownTotalOmitsPercentAndEta) {
  std::ostringstream out;
  double now = 0.0;
  ProgressReporter progress(test_options(&out, &now));
  progress.update(4, 0, 0);
  const auto text = out.str();
  EXPECT_NE(text.find("4 trials"), std::string::npos) << text;
  EXPECT_EQ(text.find('%'), std::string::npos) << text;
  EXPECT_EQ(text.find("eta"), std::string::npos) << text;
}

TEST(ProgressReporter, FormatDuration) {
  EXPECT_EQ(format_duration_s(3.2), "3.2s");
  EXPECT_EQ(format_duration_s(72.0), "1m12s");
  EXPECT_EQ(format_duration_s(2 * 3600 + 5 * 60), "2h05m");
}

TEST(InstrumentedStore, CountsEveryOperation) {
  MetricsRegistry metrics;
  InstrumentedStore store(util::default_store(), &metrics);
  const auto path = tmp_path("instrumented.txt");

  auto file = store.open(path, /*truncate=*/true);
  file->append("hello ");
  file->append("world");
  file->sync();
  file.reset();
  EXPECT_TRUE(store.read(path).has_value());
  EXPECT_FALSE(store.read(tmp_path("missing.txt")).has_value());
  store.atomic_replace(path, "replaced");
  store.truncate(path, 4);
  EXPECT_TRUE(store.remove(path));

  EXPECT_EQ(metrics.counter("store.opens"), 1u);
  EXPECT_EQ(metrics.counter("store.appends"), 2u);
  EXPECT_EQ(metrics.counter("store.append_bytes"), 11u);
  EXPECT_EQ(metrics.counter("store.fsyncs"), 1u);
  EXPECT_EQ(metrics.counter("store.reads"), 2u);  // missing reads count too
  EXPECT_EQ(metrics.counter("store.replaces"), 1u);
  EXPECT_EQ(metrics.counter("store.truncates"), 1u);
  EXPECT_EQ(metrics.counter("store.removes"), 1u);
}

TEST(InstrumentedStore, RejectsNullArguments) {
  MetricsRegistry metrics;
  EXPECT_THROW(InstrumentedStore(nullptr, &metrics), std::invalid_argument);
  EXPECT_THROW(InstrumentedStore(util::default_store(), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::obs
