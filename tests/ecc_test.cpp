#include <gtest/gtest.h>

#include <cstdint>

#include "ecc/hamming74.h"
#include "ecc/secded.h"
#include "util/rng.h"

namespace hbmrd::ecc {
namespace {

constexpr std::uint64_t kWords[] = {
    0x0ull,
    0xFFFFFFFFFFFFFFFFull,
    0x5555555555555555ull,
    0xDEADBEEFCAFEF00Dull,
    0x8000000000000001ull,
};

TEST(Secded, CleanWordDecodesClean) {
  for (auto word : kWords) {
    const auto check = Secded72_64::encode(word);
    const auto result = Secded72_64::decode(word, check);
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, word);
  }
}

/// Property: every single data-bit error is corrected.
class SecdedSingleBitTest : public ::testing::TestWithParam<int> {};

TEST_P(SecdedSingleBitTest, CorrectsDataBitError) {
  const int bit = GetParam();
  for (auto word : kWords) {
    const auto check = Secded72_64::encode(word);
    const auto corrupted = word ^ (1ull << bit);
    const auto result = Secded72_64::decode(corrupted, check);
    EXPECT_EQ(result.status, DecodeStatus::kCorrectedData) << "bit " << bit;
    EXPECT_EQ(result.data, word) << "bit " << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, SecdedSingleBitTest,
                         ::testing::Range(0, 64));

/// Property: every single check-bit error leaves the data intact.
class SecdedCheckBitTest : public ::testing::TestWithParam<int> {};

TEST_P(SecdedCheckBitTest, CorrectsCheckBitError) {
  const int bit = GetParam();
  for (auto word : kWords) {
    const auto check = Secded72_64::encode(word);
    const auto corrupted_check =
        static_cast<std::uint8_t>(check ^ (1u << bit));
    const auto result = Secded72_64::decode(word, corrupted_check);
    EXPECT_EQ(result.status, DecodeStatus::kCorrectedParity) << "bit " << bit;
    EXPECT_EQ(result.data, word) << "bit " << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCheckBits, SecdedCheckBitTest,
                         ::testing::Range(0, 8));

TEST(Secded, DetectsAllDoubleDataBitErrors) {
  // Sweep a deterministic sample of bit pairs across all 64x63/2 pairs.
  const std::uint64_t word = 0xDEADBEEFCAFEF00Dull;
  const auto check = Secded72_64::encode(word);
  for (int i = 0; i < 64; ++i) {
    for (int j = i + 1; j < 64; ++j) {
      const auto corrupted = word ^ (1ull << i) ^ (1ull << j);
      const auto result = Secded72_64::decode(corrupted, check);
      EXPECT_EQ(result.status, DecodeStatus::kDetectedUncorrectable)
          << "bits " << i << "," << j;
    }
  }
}

TEST(Secded, DetectsDataPlusCheckDoubleError) {
  const std::uint64_t word = 0x123456789ABCDEF0ull;
  const auto check = Secded72_64::encode(word);
  for (int data_bit = 0; data_bit < 64; data_bit += 7) {
    for (int check_bit = 0; check_bit < 8; ++check_bit) {
      const auto result = Secded72_64::decode(
          word ^ (1ull << data_bit),
          static_cast<std::uint8_t>(check ^ (1u << check_bit)));
      EXPECT_EQ(result.status, DecodeStatus::kDetectedUncorrectable)
          << data_bit << "," << check_bit;
    }
  }
}

TEST(Secded, TripleErrorsEscapeTheGuarantee) {
  // Sec. 8.1: >= 3 flips per word can be silently miscorrected — the code
  // must NOT report them all as detected. Count outcomes over a sweep.
  const std::uint64_t word = 0ull;
  const auto check = Secded72_64::encode(word);
  int miscorrected = 0;
  util::Stream rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const int a = static_cast<int>(rng.next_below(64));
    int b = static_cast<int>(rng.next_below(64));
    int c = static_cast<int>(rng.next_below(64));
    if (a == b || b == c || a == c) continue;
    const auto corrupted = word ^ (1ull << a) ^ (1ull << b) ^ (1ull << c);
    const auto result = Secded72_64::decode(corrupted, check);
    if (result.status == DecodeStatus::kCorrectedData &&
        result.data != word) {
      ++miscorrected;
    }
  }
  EXPECT_GT(miscorrected, 0);
}

TEST(Hamming74, RoundTripAllNibbles) {
  for (std::uint8_t nibble = 0; nibble < 16; ++nibble) {
    const auto codeword = Hamming74::encode(nibble);
    EXPECT_LT(codeword, 128);
    EXPECT_EQ(Hamming74::decode(codeword), nibble);
    EXPECT_FALSE(Hamming74::had_error(codeword));
  }
}

/// Property: every single-bit error in every codeword is corrected.
class Hamming74SingleBitTest : public ::testing::TestWithParam<int> {};

TEST_P(Hamming74SingleBitTest, CorrectsSingleError) {
  const int bit = GetParam();
  for (std::uint8_t nibble = 0; nibble < 16; ++nibble) {
    const auto corrupted = static_cast<std::uint8_t>(
        Hamming74::encode(nibble) ^ (1u << bit));
    EXPECT_EQ(Hamming74::decode(corrupted), nibble)
        << "nibble " << int(nibble) << " bit " << bit;
    EXPECT_TRUE(Hamming74::had_error(corrupted));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, Hamming74SingleBitTest,
                         ::testing::Range(0, 7));

TEST(Hamming74, StorageOverheadMatchesPaperArgument) {
  // Sec. 8.1: (7,4) Hamming costs 3 parity bits per 4 data bits = 75%.
  EXPECT_DOUBLE_EQ(3.0 / 4.0, 0.75);
}

}  // namespace
}  // namespace hbmrd::ecc
