#include "dram/bank.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "disturb/fault_model.h"
#include "dram/geometry.h"

namespace hbmrd::dram {
namespace {

constexpr BankAddress kAddr{0, 0, 0};
// Mid-subarray victim: subarray 5 spans physical rows 3904..4671.
constexpr int kVictim = 4300;

disturb::DisturbParams test_params() {
  disturb::DisturbParams p;
  p.seed = 0xBADC0FFEEull;
  return p;
}

struct TestBank {
  disturb::FaultModel fault{test_params()};
  Environment env{60.0};
  TimingParams timing{};
  Bank bank{kAddr, &fault, &env, timing};
  Cycle now = 1000;

  void write_row(int row, const RowBits& bits) {
    bank.activate(row, now);
    std::array<std::uint64_t, kWordsPerColumn> column;
    for (int c = 0; c < kColumns; ++c) {
      bits.get_column(c, column);
      bank.write_column(c, column, now + timing.t_rcd + 1);
    }
    now += timing.t_ras + 100;
    bank.precharge(now);
    now += timing.t_rp + 100;
  }

  RowBits read_row(int row) {
    bank.activate(row, now);
    RowBits bits;
    std::array<std::uint64_t, kWordsPerColumn> column;
    for (int c = 0; c < kColumns; ++c) {
      bank.read_column(c, column, now + timing.t_rcd + 1);
      bits.set_column(c, column);
    }
    now += timing.t_ras + 100;
    bank.precharge(now);
    now += timing.t_rp + 100;
    return bits;
  }

  void hammer(int victim, std::uint64_t count) {
    const std::array<HammerStep, 2> steps = {
        HammerStep{victim - 1, timing.t_ras},
        HammerStep{victim + 1, timing.t_ras}};
    now = bank.bulk_hammer(steps, count, now) + 100;
  }
};

/// Victim bitflips after a fresh init + double-sided hammer of `count`.
int flips_after(std::uint64_t count) {
  TestBank t;
  const auto victim_bits = RowBits::filled(0x55);
  t.write_row(kVictim, victim_bits);
  t.write_row(kVictim - 1, RowBits::filled(0xAA));
  t.write_row(kVictim + 1, RowBits::filled(0xAA));
  t.hammer(kVictim, count);
  return t.read_row(kVictim).count_diff(victim_bits);
}

/// Smallest power-of-two hammer count that flips at least one victim cell.
std::uint64_t doubling_hc() {
  static const std::uint64_t hc = [] {
    for (std::uint64_t count = 8192; count <= (1u << 21); count *= 2) {
      if (flips_after(count) > 0) return count;
    }
    ADD_FAILURE() << "no bitflips up to 2M hammers";
    return std::uint64_t{1 << 21};
  }();
  return hc;
}

TEST(Bank, PowerOnContentsAreDeterministic) {
  TestBank a;
  TestBank b;
  EXPECT_EQ(a.read_row(123), b.read_row(123));
  EXPECT_NE(a.read_row(123), a.read_row(124));  // rows differ
}

TEST(Bank, WriteReadRoundTripSurvivesPrecharge) {
  TestBank t;
  const auto bits = RowBits::filled(0xC3);
  t.write_row(777, bits);
  EXPECT_EQ(t.read_row(777), bits);
  EXPECT_EQ(t.read_row(777), bits);  // second read identical
}

TEST(Bank, HammerFlipsVictimCells) {
  const auto hc = doubling_hc();
  EXPECT_EQ(flips_after(hc / 2), 0);
  EXPECT_GT(flips_after(hc), 0);
}

/// Property: bitflip count is monotone non-decreasing in hammer count.
class HammerMonotoneTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(HammerMonotoneTest, FlipsNonDecreasing) {
  const auto [low, high] = GetParam();
  EXPECT_LE(flips_after(low), flips_after(high));
}

INSTANTIATE_TEST_SUITE_P(
    CountSweep, HammerMonotoneTest,
    ::testing::Values(std::pair{8192u, 32768u}, std::pair{32768u, 131072u},
                      std::pair{131072u, 524288u},
                      std::pair{262144u, 1048576u}));

TEST(Bank, RefreshResetsAccumulatedDose) {
  const auto hc = doubling_hc();
  TestBank t;
  const auto victim_bits = RowBits::filled(0x55);
  t.write_row(kVictim, victim_bits);
  t.write_row(kVictim - 1, RowBits::filled(0xAA));
  t.write_row(kVictim + 1, RowBits::filled(0xAA));
  // Two half-doses with a victim refresh in between never flip...
  t.hammer(kVictim, hc / 2);
  t.bank.refresh_row(kVictim, t.now);
  t.hammer(kVictim, hc / 2);
  EXPECT_EQ(t.read_row(kVictim).count_diff(victim_bits), 0);
  // ...whereas the same total without the refresh does (fresh instance).
  EXPECT_GT(flips_after(hc), 0);
}

TEST(Bank, ActivationRestoresTheActivatedRow) {
  const auto hc = doubling_hc();
  TestBank t;
  const auto victim_bits = RowBits::filled(0x55);
  t.write_row(kVictim, victim_bits);
  t.write_row(kVictim - 1, RowBits::filled(0xAA));
  t.write_row(kVictim + 1, RowBits::filled(0xAA));
  t.hammer(kVictim, hc / 2);
  // Reading the victim activates (senses + restores) it.
  EXPECT_EQ(t.read_row(kVictim).count_diff(victim_bits), 0);
  t.hammer(kVictim, hc / 2);
  EXPECT_EQ(t.read_row(kVictim).count_diff(victim_bits), 0);
}

TEST(Bank, DisturbanceDoesNotCrossSubarrayBoundary) {
  // Subarray 0 ends at physical row 831; subarray 1 starts at 832.
  TestBank t;
  const auto bits = RowBits::filled(0x55);
  t.write_row(831, bits);
  t.write_row(833, bits);
  const std::array<HammerStep, 1> steps = {
      HammerStep{832, t.timing.t_ras}};
  t.now = t.bank.bulk_hammer(steps, 2'000'000, t.now) + 100;
  // Row 831 (other subarray): untouched. Row 833 (same subarray): flipped.
  EXPECT_EQ(t.read_row(831).count_diff(bits), 0);
  EXPECT_GT(t.read_row(833).count_diff(bits), 0);
}

TEST(Bank, BulkHammerMatchesIterativeExecution) {
  constexpr std::uint64_t kCount = 40000;
  // Iterative: explicit ACT/PRE pairs at the canonical schedule.
  TestBank slow;
  const auto victim_bits = RowBits::filled(0x55);
  slow.write_row(kVictim, victim_bits);
  slow.write_row(kVictim - 1, RowBits::filled(0xAA));
  slow.write_row(kVictim + 1, RowBits::filled(0xAA));
  TestBank fast;
  fast.write_row(kVictim, victim_bits);
  fast.write_row(kVictim - 1, RowBits::filled(0xAA));
  fast.write_row(kVictim + 1, RowBits::filled(0xAA));

  Cycle now = std::max(slow.now, fast.now);
  slow.now = fast.now = now;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    for (int row : {kVictim - 1, kVictim + 1}) {
      slow.bank.activate(row, slow.now);
      slow.bank.precharge(slow.now + slow.timing.t_ras);
      slow.now += slow.timing.t_rc;
    }
  }
  fast.hammer(kVictim, kCount);

  slow.now += 100;
  EXPECT_EQ(slow.read_row(kVictim), fast.read_row(kVictim));
}

TEST(Bank, RetentionDecayAppearsOverTime) {
  TestBank t;
  t.env.temperature_c = 90.0;
  const auto bits = RowBits::filled(0xFF);
  // Find a row with at least one weak cell within 4 s at 90 C.
  int weak_row = -1;
  for (int row = 100; row < 400; ++row) {
    t.write_row(row, bits);
    t.now += seconds_to_cycles(4.0);
    if (t.read_row(row).count_diff(bits) > 0) {
      weak_row = row;
      break;
    }
  }
  ASSERT_GE(weak_row, 0) << "no retention-weak row in scan range";
  // Short waits keep the data intact.
  t.write_row(weak_row, bits);
  t.now += seconds_to_cycles(0.030);
  EXPECT_EQ(t.read_row(weak_row).count_diff(bits), 0);
  // Longer waits decay at least as many cells as shorter ones.
  t.write_row(weak_row, bits);
  t.now += seconds_to_cycles(4.0);
  const int at_4s = t.read_row(weak_row).count_diff(bits);
  t.write_row(weak_row, bits);
  t.now += seconds_to_cycles(40.0);
  const int at_40s = t.read_row(weak_row).count_diff(bits);
  EXPECT_GT(at_4s, 0);
  EXPECT_GE(at_40s, at_4s);
}

TEST(Bank, PointerRefreshWalksAllRows) {
  TestBank t;
  EXPECT_EQ(t.bank.refresh_pointer(), 0);
  t.bank.refresh(t.now);
  EXPECT_EQ(t.bank.refresh_pointer(), t.timing.rows_per_ref());
  // A full window of REFs covers every row and wraps the pointer around.
  for (int i = 1; i < t.timing.refs_per_window(); ++i) {
    t.now += t.timing.t_rfc + 10;
    t.bank.refresh(t.now);
  }
  const int expected =
      (t.timing.refs_per_window() * t.timing.rows_per_ref()) % kRowsPerBank;
  EXPECT_EQ(t.bank.refresh_pointer(), expected);
}

class CountingDefense : public ReadDisturbDefense {
 public:
  void on_activate(int row, Cycle) override {
    ++activations;
    last_row = row;
  }
  void on_activate_bulk(int row, std::uint64_t count, Cycle) override {
    activations += count;
    last_row = row;
  }
  std::vector<int> on_refresh(Cycle) override {
    ++refreshes;
    return victims_to_refresh;
  }

  std::uint64_t activations = 0;
  int refreshes = 0;
  int last_row = -1;
  std::vector<int> victims_to_refresh;
};

TEST(Bank, DefenseHooksAreInvoked) {
  TestBank t;
  auto defense = std::make_unique<CountingDefense>();
  auto* raw = defense.get();
  t.bank.set_defense(std::move(defense));

  t.bank.activate(10, t.now);
  t.bank.precharge(t.now + t.timing.t_ras);
  t.now += 1000;
  EXPECT_EQ(raw->activations, 1u);
  EXPECT_EQ(raw->last_row, 10);

  const std::array<HammerStep, 1> steps = {HammerStep{20, t.timing.t_ras}};
  t.now = t.bank.bulk_hammer(steps, 500, t.now) + 100;
  EXPECT_EQ(raw->activations, 501u);

  t.bank.refresh(t.now);
  EXPECT_EQ(raw->refreshes, 1);
}

TEST(Bank, DefenseVictimRefreshProtects) {
  const auto hc = doubling_hc();
  TestBank t;
  auto defense = std::make_unique<CountingDefense>();
  auto* raw = defense.get();
  t.bank.set_defense(std::move(defense));
  const auto victim_bits = RowBits::filled(0x55);
  t.write_row(kVictim, victim_bits);
  t.write_row(kVictim - 1, RowBits::filled(0xAA));
  t.write_row(kVictim + 1, RowBits::filled(0xAA));
  t.hammer(kVictim, hc / 2);
  raw->victims_to_refresh = {kVictim};
  t.bank.refresh(t.now);  // defense refreshes the victim
  t.now += t.timing.t_rfc + 10;
  t.hammer(kVictim, hc / 2);
  EXPECT_EQ(t.read_row(kVictim).count_diff(victim_bits), 0);
}

TEST(Bank, DefenseVictimRefreshDisturbsItsNeighbors) {
  // Sec. 8.1: a TRR victim refresh is a row activation, so it carries the
  // HalfDouble vector — the refreshed row's neighbours receive dose.
  TestBank t;
  auto defense = std::make_unique<CountingDefense>();
  auto* raw = defense.get();
  t.bank.set_defense(std::move(defense));
  t.write_row(200, RowBits::filled(0x55));
  t.write_row(201, RowBits::filled(0x55));
  raw->victims_to_refresh = {200};
  t.bank.refresh(t.now);
  const auto* neighbor_ledger = t.bank.ledger(201);
  ASSERT_NE(neighbor_ledger, nullptr);
  EXPECT_GT(neighbor_ledger->adjacent_dose(), 0.0);
  // Pointer refreshes stay disturbance-free: a defense-less refresh pass
  // touches no additional rows.
  TestBank plain;
  plain.bank.refresh(plain.now);
  EXPECT_EQ(plain.bank.touched_rows(), 0u);
}

TEST(Bank, ProtocolErrors) {
  TestBank t;
  t.bank.activate(5, t.now);
  EXPECT_THROW(t.bank.activate(6, t.now + 1000), TimingViolation);
  EXPECT_THROW(t.bank.precharge(t.now + 1), TimingViolation);  // tRAS
  EXPECT_THROW(t.bank.refresh(t.now + 5000), TimingViolation);  // open bank
  t.bank.precharge(t.now + t.timing.t_ras);
  std::array<std::uint64_t, kWordsPerColumn> buffer;
  EXPECT_THROW(t.bank.read_column(0, buffer, t.now + 500), TimingViolation);
  EXPECT_THROW(t.bank.activate(-1, t.now + 5000), std::out_of_range);
  EXPECT_THROW(t.bank.activate(kRowsPerBank, t.now + 5000),
               std::out_of_range);
}

TEST(Bank, BulkHammerValidation) {
  TestBank t;
  const std::array<HammerStep, 1> steps = {HammerStep{10, t.timing.t_ras}};
  EXPECT_THROW(t.bank.bulk_hammer({}, 10, t.now), std::invalid_argument);
  EXPECT_THROW(t.bank.bulk_hammer(steps, 0, t.now), std::invalid_argument);
  const std::array<HammerStep, 1> short_on = {HammerStep{10, 1}};
  EXPECT_THROW(t.bank.bulk_hammer(short_on, 10, t.now), TimingViolation);
  t.bank.activate(5, t.now);
  EXPECT_THROW(t.bank.bulk_hammer(steps, 10, t.now + 1000), TimingViolation);
}

TEST(Bank, CountersTrackDeviceEvents) {
  TestBank t;
  EXPECT_EQ(t.bank.counters().activations, 0u);
  t.write_row(100, RowBits::filled(0x55));  // one ACT
  t.write_row(99, RowBits::filled(0xAA));
  t.write_row(101, RowBits::filled(0xAA));
  t.hammer(100, 1000);  // 2 aggressors x 1000 via the fast path
  EXPECT_EQ(t.bank.counters().activations, 3u + 2000u);
  t.bank.refresh(t.now);
  t.now += t.timing.t_rfc + 10;
  EXPECT_EQ(t.bank.counters().refresh_commands, 1u);
  // Flips materialize into the counter too.
  const auto before = t.bank.counters().bitflips_materialized;
  t.hammer(100, 2'000'000);
  (void)t.read_row(100);
  EXPECT_GT(t.bank.counters().bitflips_materialized, before);
}

TEST(Bank, DropRowStatesReclaimsMemory) {
  TestBank t;
  t.write_row(100, RowBits::filled(0xFF));
  EXPECT_GT(t.bank.touched_rows(), 0u);
  t.bank.drop_row_states();
  EXPECT_EQ(t.bank.touched_rows(), 0u);
  // Contents revert to power-on garbage.
  EXPECT_NE(t.read_row(100), RowBits::filled(0xFF));
}

}  // namespace
}  // namespace hbmrd::dram
