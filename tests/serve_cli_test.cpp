// Exit-code audit + end-to-end drive of the serve verbs (docs/SERVING.md):
// cli_main is a pure function of (args, streams), so the whole audit runs
// in-process. Repo convention: 0 success, 1 runtime failure, 2 usage
// error with the usage text on stderr. Also covers the frame protocol
// (length-prefix round-trip, oversize refusal) and a full in-process
// BatchServer lifecycle: serve -> query_over_socket -> drain.
#include "serve/cli.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "serve/export.h"
#include "serve/index.h"
#include "serve/server.h"
#include "util/store.h"

namespace hbmrd::serve {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "serve_cli_test_" + name;
}

struct CliResult {
  int code = -1;
  std::string out;
  std::string err;
};

CliResult run_cli(const std::vector<std::string>& args,
                  const std::string& stdin_text = "") {
  std::istringstream in(stdin_text);
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = cli_main(args, in, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// A small hand-built index (no simulation): chip 2 (identity mapping),
/// one Checkered0 rung for row 100 and a retention row.
std::string write_small_index(const std::string& path) {
  ExportSpec spec;
  spec.chip_index = 2;
  spec.hc_depth = 1;
  IndexBuilder builder(manifest_for(spec));
  builder.set_rung({0, 0, 0, 2, 0}, 100, 1, 54321);
  builder.set_retention({0, 0, 0, kRetentionPatternId, 0}, 100, 64.5);
  builder.write(*util::default_store(), path);
  return path;
}

TEST(ServeCli, UsageErrorsExitTwoWithUsageText) {
  const std::vector<std::vector<std::string>> bad = {
      {},                                            // no verb
      {"frobnicate"},                                // unknown verb
      {"export"},                                    // missing --index
      {"export", "--index", "x"},                    // neither source
      {"export", "--index", "x", "--measure", "--from-campaign", "y"},
      {"export", "--index", "x", "--measure"},       // missing --rows
      {"export", "--index", "x", "--measure", "--rows", "9..1"},
      {"export", "--index", "x", "--measure", "--rows", "1..2", "--chip",
       "9"},
      {"export", "--index"},                         // flag needs a value
      {"export", "--bogus"},                         // unknown flag
      {"query"},                                     // neither index/socket
      {"query", "--index", "a", "--socket", "b"},    // both
      {"query", "--socket", "s", "--force-miss"},    // local-only mode
      {"query", "--socket", "s", "--no-fallback"},
      {"serve", "--index", "x"},                     // missing --socket
      {"serve", "--socket", "s"},                    // missing --index
      {"serve", "--index", "x", "--socket", "s", "--threads", "0"},
      {"serve", "--index", "x", "--socket", "s", "--threads", "999"},
  };
  for (const auto& args : bad) {
    const auto result = run_cli(args);
    EXPECT_EQ(result.code, 2) << "args[0]="
                              << (args.empty() ? "<none>" : args[0]);
    EXPECT_NE(result.err.find("usage:"), std::string::npos);
    EXPECT_TRUE(result.out.empty());
  }
}

TEST(ServeCli, RuntimeFailuresExitOne) {
  auto store = util::default_store();

  // Missing index file.
  auto result = run_cli({"query", "--index", tmp_path("missing.hbmidx")});
  EXPECT_EQ(result.code, 1);
  EXPECT_FALSE(result.err.empty());

  // Corrupt index: actionable message, never served.
  const auto corrupt = tmp_path("corrupt.hbmidx");
  store->atomic_replace(corrupt, "HBMIDX1\nbut the rest is garbage");
  result = run_cli({"query", "--index", corrupt});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("refusing to serve"), std::string::npos);

  // Unreachable server.
  result = run_cli({"query", "--socket", tmp_path("nobody.sock")});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("no server"), std::string::npos);

  // Valid index, missing batch file.
  const auto index_path = write_small_index(tmp_path("ok.hbmidx"));
  result = run_cli({"query", "--index", index_path, "--batch",
                    tmp_path("missing.batch")});
  EXPECT_EQ(result.code, 1);

  store->remove(corrupt);
  store->remove(index_path);
}

TEST(ServeCli, QueryServesHandBuiltIndexAndWritesMetrics) {
  const auto index_path = write_small_index(tmp_path("query.hbmidx"));
  const auto metrics_path = tmp_path("query.metrics.json");

  const auto hit = run_cli({"query", "--index", index_path, "--no-fallback",
                            "--metrics-out", metrics_path},
                           "hc_first 0 0 0 100 Checkered0\n"
                           "min_retention 0 0 0 100\n");
  EXPECT_EQ(hit.code, 0) << hit.err;
  EXPECT_EQ(hit.out,
            "hc_first,0,0,0,100,Checkered0,0,54321\n"
            "min_retention,0,0,0,100,64.5\n");

  auto store = util::default_store();
  const auto metrics = store->read(metrics_path);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("serve.index_hits"), std::string::npos);
  EXPECT_NE(metrics->find("serve.queries"), std::string::npos);

  store->remove(index_path);
  store->remove(metrics_path);
}

TEST(ServeCli, ExportMeasureThenQueryHitEqualsForcedMiss) {
  // The full loop through the real binary surface: measure a one-row
  // index, then assert the CLI-level byte-identity between an index hit
  // and --force-miss live simulation of the same query.
  const auto index_path = tmp_path("measured.hbmidx");
  const auto exported = run_cli({"export", "--index", index_path,
                                 "--measure", "--chip", "2", "--hc-depth",
                                 "1", "--rows", "4300..4300", "--patterns",
                                 "Checkered0", "--retention"});
  ASSERT_EQ(exported.code, 0) << exported.err;
  EXPECT_NE(exported.out.find("export: wrote"), std::string::npos);

  const std::string batch =
      "hc_first 0 0 0 4300 Checkered0\n"
      "min_retention 0 0 0 4300\n";
  const auto hit =
      run_cli({"query", "--index", index_path, "--no-fallback"}, batch);
  ASSERT_EQ(hit.code, 0) << hit.err;
  EXPECT_EQ(hit.out.find("error"), std::string::npos) << hit.out;

  const auto miss =
      run_cli({"query", "--index", index_path, "--force-miss"}, batch);
  ASSERT_EQ(miss.code, 0) << miss.err;
  EXPECT_EQ(hit.out, miss.out)
      << "CLI hit path and forced-miss path disagree";

  util::default_store()->remove(index_path);
}

TEST(ServeCli, FrameProtocolRoundTripsAndRefusesOversizedLengths) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  ASSERT_TRUE(write_frame(fds[0], "hc_first 0 0 0 100 Checkered0\n"));
  ASSERT_TRUE(write_frame(fds[0], ""));  // empty frames are legal
  std::string payload;
  ASSERT_TRUE(read_frame(fds[1], payload));
  EXPECT_EQ(payload, "hc_first 0 0 0 100 Checkered0\n");
  ASSERT_TRUE(read_frame(fds[1], payload));
  EXPECT_EQ(payload, "");

  // A length prefix above kMaxFrameBytes must be refused without
  // allocating: send 0xFFFFFFFF and nothing else.
  const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(write(fds[0], huge, 4), 4);
  EXPECT_FALSE(read_frame(fds[1], payload));

  close(fds[0]);
  close(fds[1]);

  // Clean EOF before any byte is a quiet false, not an error.
  int fds2[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds2), 0);
  close(fds2[0]);
  EXPECT_FALSE(read_frame(fds2[1], payload));
  close(fds2[1]);
}

TEST(ServeCli, BatchServerServesDrainsAndFoldsCounters) {
  const auto index_path = write_small_index(tmp_path("server.hbmidx"));
  const auto socket_path = tmp_path("server.sock");

  std::atomic<bool> stop{false};
  std::ostringstream log;
  BatchServerOptions options;
  options.socket_path = socket_path;
  options.threads = 2;
  options.should_stop = [&stop] { return stop.load(); };
  options.log = &log;
  options.poll_interval_ms = 10;

  BatchServer server(Index::load(*util::default_store(), index_path),
                     options);
  BatchServerReport report;
  std::thread serving([&] { report = server.run(); });

  // Poll for readiness through the public client: the server owns the
  // socket path once connect+exchange succeeds.
  std::optional<std::string> response;
  for (int attempt = 0; attempt < 200 && !response; ++attempt) {
    response = query_over_socket(socket_path,
                                 "hc_first 0 0 0 100 Checkered0\n");
    if (!response) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(response.has_value()) << "server never became ready";
  EXPECT_EQ(*response, "hc_first,0,0,0,100,Checkered0,0,54321\n");

  // A second connection with a multi-line batch, then drain.
  const auto second = query_over_socket(
      socket_path,
      "min_retention 0 0 0 100\nhc_first 0 0 0 100 Checkered0\n");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second,
            "min_retention,0,0,0,100,64.5\n"
            "hc_first,0,0,0,100,Checkered0,0,54321\n");

  stop = true;
  serving.join();

  EXPECT_EQ(report.connections, 2u);
  EXPECT_EQ(report.counters.batches, 2u);
  EXPECT_EQ(report.counters.queries, 3u);
  EXPECT_EQ(report.counters.hits, 3u);
  EXPECT_EQ(report.counters.errors, 0u);
  EXPECT_NE(log.str().find("serve: listening on " + socket_path),
            std::string::npos);
  EXPECT_NE(log.str().find("serve: drained"), std::string::npos);
  // The socket path is unlinked on drain; a late client gets a clean miss.
  EXPECT_FALSE(query_over_socket(socket_path, "x").has_value());

  util::default_store()->remove(index_path);
}

TEST(ServeCli, ServerRejectsIndexForAChipItCannotModel) {
  ExportSpec spec;
  spec.chip_index = 2;
  spec.hc_depth = 1;
  auto manifest = manifest_for(spec);
  manifest.mapping_scheme ^= 1;  // disagree with the chip profile
  IndexBuilder builder(manifest);
  builder.set_rung({0, 0, 0, 2, 0}, 100, 1, 54321);

  BatchServerOptions options;
  options.socket_path = tmp_path("mismatch.sock");
  EXPECT_THROW(
      BatchServer(Index::parse(builder.serialize(), "mem"), options),
      IndexError);
}

}  // namespace
}  // namespace hbmrd::serve
