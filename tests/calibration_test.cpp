// Calibration regression guards: coarse bands around the paper-anchored
// aggregates (DESIGN.md Sec. 4 / EXPERIMENTS.md). These are deliberately
// wide — they exist so a model change that silently destroys a headline
// shape fails CI, not to pin exact values.
#include <gtest/gtest.h>

#include "bender/platform.h"
#include "study/ber.h"
#include "study/hc_first.h"
#include "study/row_selection.h"
#include "util/stats.h"

namespace hbmrd {
namespace {

struct CalibrationFixture : ::testing::Test {
  bender::Platform platform;
  bender::HbmChip& chip = platform.chip(2);  // identity mapping
  study::AddressMap map =
      study::AddressMap::from_scheme(chip.profile().mapping);
  dram::BankAddress bank{0, 0, 0};
};

TEST_F(CalibrationFixture, BerAt256KInPaperBand) {
  // Paper chip means: 0.66% - 1.28% (WCDP); band [0.2%, 2.5%].
  study::BerConfig config;
  std::vector<double> bers;
  for (int row : study::spread_rows(24)) {
    bers.push_back(
        study::measure_row_ber(chip, map, {bank, row}, config).ber);
  }
  const double mean = util::mean(bers);
  EXPECT_GT(mean, 0.002);
  EXPECT_LT(mean, 0.025);
}

TEST_F(CalibrationFixture, HcFirstMedianInPaperBand) {
  // Paper medians ~75K-105K; band [25K, 250K].
  study::HcSearchConfig config;
  std::vector<double> hcs;
  for (int row : study::spread_rows(16)) {
    const auto hc = study::find_hc_first(chip, map, {bank, row}, config);
    if (hc) hcs.push_back(static_cast<double>(*hc));
  }
  ASSERT_GE(hcs.size(), 12u);
  const double median = util::median(hcs);
  EXPECT_GT(median, 25'000.0);
  EXPECT_LT(median, 250'000.0);
}

TEST_F(CalibrationFixture, RowPressAmplificationNearPaperFactors) {
  // Obsv. 23: ~55x at tREFI, ~222x at 9*tREFI. Bands: [35, 80] / [140, 320].
  const auto& timing = chip.stack().timing();
  const dram::RowAddress victim{bank, 4500};
  study::HcSearchConfig config;
  const auto base = study::find_hc_first(chip, map, victim, config);
  config.on_cycles = timing.t_refi;
  const auto at_trefi = study::find_hc_first(chip, map, victim, config);
  config.on_cycles = timing.max_ref_delay();
  const auto at_9trefi = study::find_hc_first(chip, map, victim, config);
  ASSERT_TRUE(base && at_trefi && at_9trefi);
  const double amp1 = static_cast<double>(*base) /
                      static_cast<double>(*at_trefi);
  const double amp2 = static_cast<double>(*base) /
                      static_cast<double>(*at_9trefi);
  EXPECT_GT(amp1, 35.0);
  EXPECT_LT(amp1, 80.0);
  EXPECT_GT(amp2, 140.0);
  EXPECT_LT(amp2, 320.0);
}

TEST_F(CalibrationFixture, RowPressConvergesNearHalfAtExtremeOnTime) {
  // Obsv. 22: Checkered BER converges to ~50% at 35.1 us.
  study::BerConfig config;
  config.hammer_count = 150'000;
  config.on_cycles = chip.stack().timing().max_ref_delay();
  // Retention-heavy run: use the rowpress path's raw flips as an upper
  // bound check and a basic convergence band on a mid-bank row.
  const auto result = study::measure_row_ber(chip, map, {bank, 4500}, config);
  EXPECT_GT(result.ber, 0.40);
  EXPECT_LT(result.ber, 0.62);
}

TEST_F(CalibrationFixture, ResilientSubarrayContrastPreserved) {
  // Takeaway 4 guard: regular rows flip at least 2x the resilient rows.
  study::BerConfig config;
  auto mean_at = [&](int subarray) {
    std::vector<double> bers;
    const int start = dram::subarray_start(subarray);
    for (int i = 0; i < 8; ++i) {
      bers.push_back(study::measure_row_ber(
                         chip, map, {bank, start + 300 + 8 * i}, config)
                         .ber);
    }
    return util::mean(bers);
  };
  EXPECT_GT(mean_at(3), 2.0 * mean_at(dram::kMiddleSubarray));
}

TEST(Calibration, PaperMinimaOrderOfMagnitude) {
  // Obsv. 4/5 guard: the most vulnerable sampled rows across all chips sit
  // in the 8K-60K band (paper minima 14.5K-18K over much larger scans).
  bender::Platform platform;
  double lowest = 1e18;
  for (int chip_index = 0; chip_index < platform.chip_count();
       ++chip_index) {
    auto& chip = platform.chip(chip_index);
    const auto map =
        study::AddressMap::from_scheme(chip.profile().mapping);
    study::HcSearchConfig config;
    for (int row : study::spread_rows(8)) {
      const auto hc =
          study::find_hc_first(chip, map, {{0, 0, 0}, row}, config);
      if (hc) lowest = std::min(lowest, static_cast<double>(*hc));
    }
  }
  EXPECT_GT(lowest, 8'000.0);
  EXPECT_LT(lowest, 60'000.0);
}

}  // namespace
}  // namespace hbmrd
