// Fault-injection layer: the plan is a pure function of
// (seed, trial, attempt), the FaultyChip injects exactly what the plan
// schedules, and the HbmChip recovery entry points (power_cycle, pinning)
// behave the way the campaign runner depends on.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "bender/platform.h"
#include "fault/faulty_chip.h"

namespace hbmrd::fault {
namespace {

FaultPlanConfig noisy_config() {
  FaultPlanConfig config;
  config.transient_rate = 0.5;
  config.thermal_rate = 0.3;
  config.persistent_rate = 0.1;
  config.fatal_rate = 0.05;
  return config;
}

TEST(FaultClassOf, MatchesTaxonomy) {
  EXPECT_EQ(fault_class(FaultKind::kReadoutBitCorrupt),
            FaultClass::kTransient);
  EXPECT_EQ(fault_class(FaultKind::kReadoutWordCorrupt),
            FaultClass::kTransient);
  EXPECT_EQ(fault_class(FaultKind::kReadoutTruncation),
            FaultClass::kTransient);
  EXPECT_EQ(fault_class(FaultKind::kCommandTimeout), FaultClass::kTransient);
  EXPECT_EQ(fault_class(FaultKind::kSessionReset), FaultClass::kTransient);
  EXPECT_EQ(fault_class(FaultKind::kStuckReadout), FaultClass::kPersistent);
  EXPECT_EQ(fault_class(FaultKind::kHostCrash), FaultClass::kFatal);
}

TEST(FaultPlan, FaultFreeByDefault) {
  const FaultPlan plan;
  for (std::uint64_t trial = 0; trial < 64; ++trial) {
    for (int attempt = 1; attempt <= 4; ++attempt) {
      const auto schedule = plan.attempt(trial, attempt);
      EXPECT_EQ(schedule.kind, FaultKind::kNone);
      EXPECT_EQ(schedule.excursion_delta_c, 0.0);
    }
  }
}

TEST(FaultPlan, ScheduleIsAPureFunctionOfSeedTrialAttempt) {
  const FaultPlan a(noisy_config());
  const FaultPlan b(noisy_config());
  auto other = noisy_config();
  other.seed ^= 1;
  const FaultPlan c(other);

  bool any_difference_to_c = false;
  for (std::uint64_t trial = 0; trial < 256; ++trial) {
    for (int attempt = 1; attempt <= 4; ++attempt) {
      const auto sa = a.attempt(trial, attempt);
      const auto sb = b.attempt(trial, attempt);
      EXPECT_EQ(sa.kind, sb.kind) << trial << ":" << attempt;
      EXPECT_EQ(sa.excursion_delta_c, sb.excursion_delta_c);
      const auto sc = c.attempt(trial, attempt);
      if (sc.kind != sa.kind || sc.excursion_delta_c != sa.excursion_delta_c) {
        any_difference_to_c = true;
      }
    }
  }
  EXPECT_TRUE(any_difference_to_c) << "seed has no effect on the schedule";
}

TEST(FaultPlan, TransientRateOneFaultsEveryAttempt) {
  FaultPlanConfig config;
  config.transient_rate = 1.0;
  const FaultPlan plan(config);
  bool saw_multiple_kinds = false;
  FaultKind first = plan.attempt(0, 1).kind;
  for (std::uint64_t trial = 0; trial < 128; ++trial) {
    for (int attempt = 1; attempt <= 4; ++attempt) {
      const auto schedule = plan.attempt(trial, attempt);
      EXPECT_EQ(fault_class(schedule.kind), FaultClass::kTransient);
      if (schedule.kind != first) saw_multiple_kinds = true;
    }
  }
  EXPECT_TRUE(saw_multiple_kinds) << "transient kind draw is degenerate";
}

TEST(FaultPlan, TransientRateIsApproximatelyHonored) {
  FaultPlanConfig config;
  config.transient_rate = 0.25;
  const FaultPlan plan(config);
  int faulted = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (plan.attempt(static_cast<std::uint64_t>(i), 1).kind !=
        FaultKind::kNone) {
      ++faulted;
    }
  }
  EXPECT_GT(faulted, n / 4 - n / 10);
  EXPECT_LT(faulted, n / 4 + n / 10);
}

TEST(FaultPlan, PersistentFaultSticksAcrossAllAttemptsOfATrial) {
  FaultPlanConfig config;
  config.persistent_rate = 1.0;
  config.transient_rate = 0.5;  // persistent must win over transients
  const FaultPlan plan(config);
  for (std::uint64_t trial = 0; trial < 32; ++trial) {
    for (int attempt = 1; attempt <= 6; ++attempt) {
      EXPECT_EQ(plan.attempt(trial, attempt).kind, FaultKind::kStuckReadout);
    }
  }
}

TEST(FaultPlan, ThermalExcursionOnlyOnFirstAttempt) {
  FaultPlanConfig config;
  config.thermal_rate = 1.0;
  config.excursion_delta_c = 6.0;
  const FaultPlan plan(config);
  for (std::uint64_t trial = 0; trial < 32; ++trial) {
    EXPECT_EQ(std::abs(plan.attempt(trial, 1).excursion_delta_c), 6.0);
    EXPECT_EQ(plan.attempt(trial, 2).excursion_delta_c, 0.0);
    EXPECT_EQ(plan.attempt(trial, 3).excursion_delta_c, 0.0);
  }
}

TEST(FaultPlan, IncarnationKeysOnlyTheFatalDraw) {
  // Non-fatal draws must be incarnation-independent (that is what keeps
  // resumed results bit-identical)...
  auto config = noisy_config();
  config.fatal_rate = 0.0;
  const FaultPlan plan(config);
  for (std::uint64_t trial = 0; trial < 128; ++trial) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const auto s0 = plan.attempt(trial, attempt, 0);
      const auto s7 = plan.attempt(trial, attempt, 7);
      EXPECT_EQ(s0.kind, s7.kind);
      EXPECT_EQ(s0.excursion_delta_c, s7.excursion_delta_c);
    }
  }
  // ...while the fatal draw must move with the incarnation, so a resumed
  // campaign does not crash deterministically on the same trial forever.
  FaultPlanConfig fatal_config;
  fatal_config.fatal_rate = 0.5;
  const FaultPlan fatal_plan(fatal_config);
  bool fatal_draw_moved = false;
  for (std::uint64_t trial = 0; trial < 64 && !fatal_draw_moved; ++trial) {
    const bool crash0 =
        fatal_plan.attempt(trial, 1, 0).kind == FaultKind::kHostCrash;
    const bool crash1 =
        fatal_plan.attempt(trial, 1, 1).kind == FaultKind::kHostCrash;
    fatal_draw_moved = crash0 != crash1;
  }
  EXPECT_TRUE(fatal_draw_moved);
}

TEST(FaultyChip, TransparentPassThroughWhenFaultFree) {
  const auto profile = dram::chip_profiles()[2];
  bender::HbmChip chip(profile);
  FaultyChip faulty(chip);
  const dram::RowAddress addr{{0, 0, 0}, 42};
  faulty.write_row(addr, dram::RowBits::filled(0xC3));
  EXPECT_EQ(faulty.read_row(addr), dram::RowBits::filled(0xC3));
  EXPECT_EQ(faulty.stats().injected_total, 0u);
  // Armed with a fault-free plan, still transparent.
  faulty.begin_attempt(0, 1);
  EXPECT_EQ(faulty.read_row(addr), dram::RowBits::filled(0xC3));
  EXPECT_EQ(faulty.stats().injected_total, 0u);
}

TEST(FaultyChip, InjectionIsDeterministicAcrossIdenticalSessions) {
  const auto profile = dram::chip_profiles()[2];
  FaultPlanConfig config;
  config.transient_rate = 0.6;

  const auto observe = [&](std::uint64_t trial, int attempt) -> std::string {
    bender::HbmChip chip(profile);
    FaultyChip faulty(chip, FaultPlan(config));
    const dram::RowAddress addr{{0, 0, 0}, 7};
    faulty.begin_attempt(trial, attempt);
    try {
      faulty.write_row(addr, dram::RowBits::filled(0x55));
      (void)faulty.read_row(addr);
      return "clean";
    } catch (const FaultError& error) {
      return to_string(error.kind());
    }
  };

  bool saw_clean = false, saw_fault = false;
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const auto first = observe(trial, attempt);
      EXPECT_EQ(first, observe(trial, attempt)) << trial << ":" << attempt;
      (first == "clean" ? saw_clean : saw_fault) = true;
    }
  }
  EXPECT_TRUE(saw_clean);
  EXPECT_TRUE(saw_fault);
}

TEST(FaultyChip, FaultsSurfaceAsErrorsNeverAsSilentCorruption) {
  // The corrupted readout is detected (modeled as the link CRC) and thrown;
  // a subsequent clean attempt reads the true DRAM contents.
  const auto profile = dram::chip_profiles()[2];
  bender::HbmChip chip(profile);
  FaultPlanConfig config;
  config.transient_rate = 1.0;
  FaultyChip faulty(chip, FaultPlan(config));
  const dram::RowAddress addr{{0, 0, 0}, 9};
  chip.write_row(addr, dram::RowBits::filled(0x3C));

  int faults = 0;
  for (std::uint64_t trial = 0; trial < 16; ++trial) {
    faulty.begin_attempt(trial, 1);
    try {
      (void)faulty.read_row(addr);
    } catch (const FaultError&) {
      ++faults;
    }
  }
  EXPECT_GT(faults, 0);
  EXPECT_EQ(faulty.stats().injected_total, static_cast<std::uint64_t>(faults));
  // A session reset wipes DRAM, so only re-write then read: the value must
  // round-trip exactly — no fault leaves residue in a committed readout.
  FaultyChip clean(chip);
  clean.write_row(addr, dram::RowBits::filled(0x3C));
  EXPECT_EQ(clean.read_row(addr), dram::RowBits::filled(0x3C));
}

TEST(FaultyChip, ThermalExcursionIsPushedIntoTheRig) {
  const auto profile = dram::chip_profiles()[2];
  bender::HbmChip chip(profile);
  FaultPlanConfig config;
  config.thermal_rate = 1.0;
  config.excursion_delta_c = 6.0;
  FaultyChip faulty(chip, FaultPlan(config));
  const double before = chip.rig().temperature_c();
  faulty.begin_attempt(0, 1);
  const double after = chip.rig().temperature_c();
  EXPECT_NEAR(std::abs(after - before), 6.0, 1.0);
  EXPECT_EQ(faulty.stats().thermal_excursions, 1u);
}

TEST(HbmChip, PowerCycleRestoresPowerOnContentsAndClock) {
  const auto profile = dram::chip_profiles()[3];
  bender::HbmChip chip(profile);
  const dram::RowAddress addr{{1, 0, 2}, 1234};
  const auto power_on = chip.read_row(addr);

  chip.write_row(addr, dram::RowBits::filled(0xFF));
  ASSERT_NE(chip.read_row(addr), power_on);
  ASSERT_GT(chip.now(), 0u);

  chip.power_cycle();
  EXPECT_EQ(chip.now(), 0u);
  EXPECT_EQ(chip.read_row(addr), power_on)
      << "power-on contents must be deterministic (same silicon lottery)";

  // reset() is the same recovery entry point.
  chip.write_row(addr, dram::RowBits::filled(0x0F));
  chip.reset();
  EXPECT_EQ(chip.read_row(addr), power_on);
}

TEST(HbmChip, PowerCycleKeepsTheRigRunning) {
  const auto profile = dram::chip_profiles()[2];
  bender::HbmChip chip(profile);
  chip.idle(100.0);
  const double rig_time = chip.rig().time_s();
  chip.power_cycle();
  EXPECT_GE(chip.rig().time_s(), rig_time)
      << "the rig is physically independent of the board's power rail";
}

TEST(HbmChip, PinTemperatureFixesTheDeviceView) {
  const auto profile = dram::chip_profiles()[1];  // ambient chip, ~55 C
  bender::HbmChip chip(profile);
  chip.pin_temperature(82.0);
  EXPECT_EQ(chip.temperature_c(), 82.0);
  chip.idle(500.0);  // rig drifts underneath; the device view must not
  EXPECT_EQ(chip.temperature_c(), 82.0);
  ASSERT_TRUE(chip.pinned_temperature().has_value());

  chip.pin_temperature(std::nullopt);
  EXPECT_FALSE(chip.pinned_temperature().has_value());
  EXPECT_NEAR(chip.temperature_c(), profile.ambient_temperature_c, 5.0);
}

}  // namespace
}  // namespace hbmrd::fault
