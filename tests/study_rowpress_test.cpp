#include "study/rowpress.h"

#include <gtest/gtest.h>

#include "bender/platform.h"
#include "study/hc_first.h"

namespace hbmrd::study {
namespace {

struct RowPressFixture : ::testing::Test {
  bender::Platform platform;
  bender::HbmChip& chip = platform.chip(2);
  AddressMap map = AddressMap::from_scheme(chip.profile().mapping);
  dram::RowAddress victim{{0, 0, 0}, 4300};
  const dram::TimingParams& timing = chip.stack().timing();
};

TEST_F(RowPressFixture, TAggOnOperatingPoints) {
  const auto fig12 = fig12_taggon_values(timing);
  ASSERT_EQ(fig12.size(), 6u);
  EXPECT_EQ(fig12[0], timing.t_ras);
  EXPECT_EQ(fig12[4], timing.t_refi);
  EXPECT_EQ(fig12[5], 9 * timing.t_refi);
  const auto fig13 = fig13_taggon_values(timing);
  ASSERT_EQ(fig13.size(), 4u);
  EXPECT_NEAR(dram::cycles_to_seconds(fig13[3]), 0.016, 1e-6);
}

TEST_F(RowPressFixture, HammerDurationScalesLinearly) {
  const auto one = hammer_duration(timing, 2, timing.t_ras, 1);
  EXPECT_EQ(one, 2 * timing.t_rc);  // tRAS + tRP == tRC at minimum on-time
  EXPECT_EQ(hammer_duration(timing, 2, timing.t_ras, 100), 100 * one);
  // Larger on-times stretch the per-activation period.
  EXPECT_GT(hammer_duration(timing, 2, timing.t_refi, 1), one);
}

TEST_F(RowPressFixture, MaxHammersInWindowInvertsDuration) {
  const auto window = timing.t_refw;
  const auto max_hc = max_hammers_in(timing, 2, timing.t_ras, window);
  EXPECT_LE(hammer_duration(timing, 2, timing.t_ras, max_hc), window);
  EXPECT_GT(hammer_duration(timing, 2, timing.t_ras, max_hc + 1), window);
  // At a 16 ms on-time only one double-sided activation pair fits.
  EXPECT_EQ(max_hammers_in(timing, 2, timing.t_refw / 2, window), 1u);
}

TEST_F(RowPressFixture, BerGrowsWithTAggOn) {
  // Obsv. 21. Use a moderate hammer count to keep the test fast.
  RowPressBerConfig config;
  config.hammer_count = 50'000;
  config.on_cycles = timing.t_ras;
  const auto at_min = measure_rowpress_ber(chip, map, victim, config);
  config.on_cycles = 4 * timing.t_ras;
  const auto at_116ns = measure_rowpress_ber(chip, map, victim, config);
  config.on_cycles = timing.t_refi;
  const auto at_trefi = measure_rowpress_ber(chip, map, victim, config);
  EXPECT_LE(at_min.disturb_bitflips, at_116ns.disturb_bitflips);
  EXPECT_LT(at_116ns.disturb_bitflips, at_trefi.disturb_bitflips);
  // At tREFI on-time the weak population has flipped completely and the
  // bulk population starts to yield: BER far above the RowHammer regime.
  EXPECT_GT(at_trefi.ber, 0.02);
}

TEST_F(RowPressFixture, HcFirstShrinksWithTAggOn) {
  // Obsv. 23.
  HcSearchConfig config;
  config.on_cycles = timing.t_ras;
  const auto hc_min = find_hc_first(chip, map, victim, config);
  config.on_cycles = timing.t_refi;
  const auto hc_trefi = find_hc_first(chip, map, victim, config);
  config.on_cycles = timing.max_ref_delay();
  const auto hc_9trefi = find_hc_first(chip, map, victim, config);
  ASSERT_TRUE(hc_min && hc_trefi && hc_9trefi);
  EXPECT_LT(*hc_trefi, *hc_min / 20);   // ~55x amplification at tREFI
  EXPECT_LT(*hc_9trefi, *hc_trefi);     // and more at 9 * tREFI
}

TEST_F(RowPressFixture, SixteenMsOnTimeFlipsWithSingleActivation) {
  // Sec. 6: HC_first of 1 at tAggON = 16 ms.
  HcSearchConfig config;
  config.on_cycles = timing.t_refw / 2;
  const auto hc = find_hc_first(chip, map, victim, config);
  ASSERT_TRUE(hc.has_value());
  EXPECT_EQ(*hc, 1u);
}

TEST_F(RowPressFixture, RetentionProfilingIsConservative) {
  // Bits profiled as retention failures never shrink with more repeats.
  const auto duration = dram::seconds_to_cycles(2.0);
  const auto once =
      profile_retention_bits(chip, victim, DataPattern::kCheckered0,
                             duration, 1);
  const auto thrice =
      profile_retention_bits(chip, victim, DataPattern::kCheckered0,
                             duration, 3);
  EXPECT_GE(thrice.size(), once.size());
  // Deterministic retention model: the union is stable.
  EXPECT_EQ(once, thrice);
}

TEST_F(RowPressFixture, RetentionFilteringOnlyRemovesProfiledBits) {
  RowPressBerConfig config;
  config.hammer_count = 150'000;
  config.on_cycles = timing.t_refi;  // duration >> 32 ms: filter engages
  const auto result = measure_rowpress_ber(chip, map, victim, config);
  EXPECT_EQ(result.raw_bitflips,
            result.disturb_bitflips + result.retention_excluded);
  EXPECT_GE(result.retention_excluded, 0);
}

}  // namespace
}  // namespace hbmrd::study
