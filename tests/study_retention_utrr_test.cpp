#include <gtest/gtest.h>

#include <cmath>

#include "bender/platform.h"
#include "study/retention.h"
#include "study/utrr.h"

namespace hbmrd::study {
namespace {

TEST(Retention, ProfilesInSixtyFourMsSteps) {
  bender::Platform platform;
  auto& chip = platform.chip(0);  // 82 C: plenty of weak rows
  const dram::BankAddress bank{0, 0, 0};
  const auto rows =
      find_side_channel_rows(chip, bank, 2000, 2600, 0.128, 1.024, 3);
  ASSERT_GE(rows.size(), 1u);
  for (const auto& row : rows) {
    // Retention times are multiples of the 64 ms step.
    const double steps = row.retention_s / kRetentionStepSeconds;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
    EXPECT_GE(row.retention_s, 0.128);
    EXPECT_LE(row.retention_s, 1.024);
    // The profiled time brackets the true retention: waits safely below it
    // hold data, waits safely above it decay (0.5x / 1.5x margins absorb
    // the small thermal drift between profiling and verification).
    const auto bits = victim_row_bits(DataPattern::kCheckered0);
    chip.write_row(row.row, bits);
    chip.idle(0.5 * (row.retention_s - kRetentionStepSeconds));
    EXPECT_EQ(chip.read_row(row.row).count_diff(bits), 0);
    chip.write_row(row.row, bits);
    chip.idle(1.5 * row.retention_s);
    EXPECT_GT(chip.read_row(row.row).count_diff(bits), 0);
  }
}

TEST(Retention, StrongRowsReportNoFailure) {
  bender::Platform platform;
  auto& chip = platform.chip(1);  // cooler chip
  const dram::BankAddress bank{0, 0, 0};
  // Scan until a row survives the full window — most rows do.
  int strong = 0;
  for (int row = 100; row < 110; ++row) {
    if (!profile_row_retention(chip, {bank, row}, 0.512).has_value()) {
      ++strong;
    }
  }
  EXPECT_GT(strong, 5);
}

TEST(UTrr, DiscoversTheChip0Mechanism) {
  bender::Platform platform;
  auto& chip = platform.chip(0);
  const auto map = AddressMap::from_scheme(chip.profile().mapping);
  TrrProbe probe(chip, map, dram::BankAddress{0, 0, 0});
  const auto discovery = probe.discover();
  // Obsv. 24: every 17th REF is TRR-capable.
  EXPECT_EQ(discovery.trr_period, 17);
  // Obsv. 25: both neighbours refreshed.
  EXPECT_TRUE(discovery.refreshes_minus_neighbor);
  EXPECT_TRUE(discovery.refreshes_plus_neighbor);
  // Obsv. 26: first-ACT detection.
  EXPECT_TRUE(discovery.first_act_detected);
  // Obsv. 27: half-count rule with a sharp boundary.
  EXPECT_TRUE(discovery.half_count_detected);
  EXPECT_TRUE(discovery.below_half_not_detected);
  EXPECT_TRUE(discovery.chip_has_trr());
}

TEST(UTrr, FindsNoMechanismOnUnprotectedChip) {
  bender::Platform platform;
  auto& chip = platform.chip(2);  // no undocumented TRR
  const auto map = AddressMap::from_scheme(chip.profile().mapping);
  TrrProbe probe(chip, map, dram::BankAddress{0, 0, 0});
  const auto discovery = probe.discover();
  EXPECT_FALSE(discovery.chip_has_trr());
  EXPECT_EQ(discovery.trr_period, 0);
}

}  // namespace
}  // namespace hbmrd::study
