// Parallel campaign execution: `--jobs N` must be an implementation detail.
//
// The contract under test is byte-identity: for any worker count, the
// committed CSV checkpoint and the JSONL journal are the same bytes the
// serial run produces — including under kill + resume, quarantines from
// concurrent persistent faults, and fatal aborts. The report-level
// aggregates (retries, guard waits, device counters) must match too, since
// the sweeps print them.
#include "runner/runner.h"

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "bender/platform.h"

namespace hbmrd::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "parallel_runner_test_" + name;
}

/// Chip 2: ambient, identity row mapping, no documented TRR.
bender::HbmChip fresh_chip() {
  return bender::HbmChip(dram::chip_profiles()[2]);
}

const std::vector<std::string> kColumns = {"flips", "victim_byte"};

/// Same self-initializing double-sided hammer trials as runner_test.cpp.
std::vector<CampaignRunner::Trial> make_trials(int n) {
  std::vector<CampaignRunner::Trial> trials;
  for (int t = 0; t < n; ++t) {
    const int row = 64 + 8 * t;
    const auto pattern = static_cast<std::uint8_t>(0x40 + t);
    trials.push_back(
        {"row" + std::to_string(row),
         [row, pattern](bender::ChipSession& session)
             -> std::vector<std::string> {
           const dram::RowAddress victim{{0, 0, 0}, row};
           session.write_row(victim, dram::RowBits::filled(pattern));
           session.write_row({{0, 0, 0}, row - 1},
                             dram::RowBits::filled(0xFF));
           session.write_row({{0, 0, 0}, row + 1},
                             dram::RowBits::filled(0xFF));
           const std::array<int, 2> aggressors = {row - 1, row + 1};
           session.hammer({0, 0, 0}, aggressors, 20000);
           const auto bits = session.read_row(victim);
           return {std::to_string(
                       bits.count_diff(dram::RowBits::filled(pattern))),
                   std::to_string(bits.words()[0] & 0xFF)};
         }});
  }
  return trials;
}

fault::FaultPlanConfig noisy_faults() {
  fault::FaultPlanConfig faults;
  faults.transient_rate = 0.4;
  faults.thermal_rate = 0.2;
  return faults;
}

struct RunOutput {
  CampaignReport report;
  std::string csv;
  std::string journal;
};

RunOutput run_campaign(int jobs, const std::string& tag,
                       const fault::FaultPlanConfig& faults, int n_trials,
                       std::uint64_t stop_after = 0) {
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = kColumns;
  config.faults = faults;
  config.results_path = tmp_path(tag + ".csv");
  config.journal_path = tmp_path(tag + ".jsonl");
  config.stop_after_trials = stop_after;
  config.jobs = jobs;
  CampaignRunner campaign(chip, config);
  RunOutput out;
  out.report = campaign.run(make_trials(n_trials));
  out.csv = slurp(config.results_path);
  out.journal = slurp(config.journal_path);
  return out;
}

TEST(ParallelRunner, AnyJobCountIsByteIdenticalToSerial) {
  const auto serial = run_campaign(1, "ident_j1", noisy_faults(), 10);
  ASSERT_FALSE(serial.csv.empty());
  ASSERT_FALSE(serial.journal.empty());
  for (int jobs : {2, 3, 8}) {
    const auto parallel = run_campaign(
        jobs, "ident_j" + std::to_string(jobs), noisy_faults(), 10);
    EXPECT_EQ(serial.csv, parallel.csv) << "jobs=" << jobs;
    EXPECT_EQ(serial.journal, parallel.journal) << "jobs=" << jobs;
    EXPECT_EQ(serial.report.retries, parallel.report.retries);
    EXPECT_EQ(serial.report.guard_blocks, parallel.report.guard_blocks);
    EXPECT_EQ(serial.report.guard_wait_s, parallel.report.guard_wait_s);
    EXPECT_EQ(serial.report.backoff_wait_s, parallel.report.backoff_wait_s);
    EXPECT_EQ(serial.report.campaign_seconds,
              parallel.report.campaign_seconds);
    EXPECT_EQ(serial.report.device_counters.activations,
              parallel.report.device_counters.activations);
    EXPECT_EQ(serial.report.device_counters.bitflips_materialized,
              parallel.report.device_counters.bitflips_materialized);
  }
}

TEST(ParallelRunner, MoreWorkersThanTrialsStillCommitsEverything) {
  const auto out = run_campaign(16, "overprovisioned", noisy_faults(), 3);
  EXPECT_FALSE(out.report.aborted);
  EXPECT_EQ(out.report.completed, 3u);
  EXPECT_EQ(out.report.records.size(), 3u);
}

TEST(ParallelRunner, KillAndResumeUnderJobs8MatchesTheUninterruptedSerialRun) {
  const auto trials = make_trials(10);
  const auto faults = noisy_faults();

  // Reference: uninterrupted serial run.
  const auto full = run_campaign(1, "resume_full", faults, 10);
  ASSERT_FALSE(full.report.aborted);

  // Kill mid-campaign under jobs=8 (checkpoint after 4 trials), then
  // resume — still under jobs=8, on a rebooted host.
  const auto part_csv = tmp_path("resume_part.csv");
  const auto part_journal = tmp_path("resume_part.jsonl");
  {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = faults;
    config.results_path = part_csv;
    config.journal_path = part_journal;
    config.stop_after_trials = 4;
    config.jobs = 8;
    CampaignRunner campaign(chip, config);
    const auto report = campaign.run(trials);
    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.abort_reason, "stop-after-trials");
    EXPECT_EQ(report.completed + report.quarantined, 4u);
  }
  {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = faults;
    config.results_path = part_csv;
    config.journal_path = part_journal;
    config.resume = true;
    config.jobs = 8;
    CampaignRunner campaign(chip, config);
    const auto report = campaign.run(trials);
    EXPECT_FALSE(report.aborted);
    EXPECT_EQ(report.resumed, 4u);
    EXPECT_EQ(report.records.size(), trials.size());
  }
  EXPECT_EQ(full.csv, slurp(part_csv));

  // The kill + resume journal itself is also jobs-independent: replaying
  // the same kill + resume sequence serially writes the same bytes.
  const auto serial_part_csv = tmp_path("resume_part_j1.csv");
  const auto serial_part_journal = tmp_path("resume_part_j1.jsonl");
  for (const bool resume : {false, true}) {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = faults;
    config.results_path = serial_part_csv;
    config.journal_path = serial_part_journal;
    config.stop_after_trials = resume ? 0 : 4;
    config.resume = resume;
    config.jobs = 1;
    CampaignRunner campaign(chip, config);
    (void)campaign.run(trials);
  }
  EXPECT_EQ(slurp(serial_part_csv), slurp(part_csv));
  EXPECT_EQ(slurp(serial_part_journal), slurp(part_journal));
}

TEST(ParallelRunner, QuarantineOrderingSurvivesConcurrentFailures) {
  // Half the trials hit a persistent fault (draws are per-trial
  // deterministic), so under jobs=8 several failures are in flight at
  // once; the committed order must still be the campaign order.
  fault::FaultPlanConfig faults;
  faults.persistent_rate = 0.5;
  faults.transient_rate = 0.3;

  const auto serial = run_campaign(1, "quarantine_j1", faults, 12);
  const auto parallel = run_campaign(8, "quarantine_j8", faults, 12);

  EXPECT_GT(serial.report.quarantined, 0u) << "plan quarantined nothing";
  EXPECT_LT(serial.report.quarantined, 12u) << "plan quarantined everything";
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.journal, parallel.journal);
  EXPECT_EQ(serial.report.quarantined_keys(),
            parallel.report.quarantined_keys());
  ASSERT_EQ(serial.report.records.size(), parallel.report.records.size());
  for (std::size_t i = 0; i < serial.report.records.size(); ++i) {
    EXPECT_EQ(serial.report.records[i].key, parallel.report.records[i].key);
    EXPECT_EQ(serial.report.records[i].status,
              parallel.report.records[i].status);
    EXPECT_EQ(serial.report.records[i].cells,
              parallel.report.records[i].cells);
  }
}

TEST(ParallelRunner, FatalAbortIsByteIdenticalAcrossJobs) {
  fault::FaultPlanConfig faults;
  faults.fatal_rate = 0.3;
  const auto serial = run_campaign(1, "fatal_j1", faults, 10);
  const auto parallel = run_campaign(8, "fatal_j8", faults, 10);
  EXPECT_TRUE(serial.report.aborted);
  EXPECT_TRUE(parallel.report.aborted);
  EXPECT_EQ(serial.report.abort_reason, parallel.report.abort_reason);
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.journal, parallel.journal);
  EXPECT_EQ(serial.report.records.size(), parallel.report.records.size());
}

TEST(ParallelRunner, WorkerExceptionsPropagateAtTheCommitPoint) {
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = {"value"};
  config.jobs = 8;
  CampaignRunner campaign(chip, config);
  std::vector<CampaignRunner::Trial> trials;
  for (int t = 0; t < 6; ++t) {
    trials.push_back({"ok" + std::to_string(t),
                      [](bender::ChipSession&) -> std::vector<std::string> {
                        return {"1"};
                      }});
  }
  trials.push_back({"bad",
                    [](bender::ChipSession&) -> std::vector<std::string> {
                      return {"1,2"};  // comma would corrupt the checkpoint
                    }});
  EXPECT_THROW((void)campaign.run(trials), std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::runner
