#include "trr/undocumented_trr.h"

#include "trr/counter_trr.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hbmrd::trr {
namespace {

bool contains(const std::vector<int>& xs, int x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

TEST(UndocumentedTrr, Every17thRefIsTrrCapable) {
  UndocumentedTrr trr;
  trr.on_activate(100, 0);  // one sampled row so capable REFs do work
  int capable = 0;
  for (int ref = 1; ref <= 34; ++ref) {
    const auto victims = trr.on_refresh(ref);
    if (!victims.empty()) {
      ++capable;
      EXPECT_EQ(ref % 17, 0) << "victim refresh on non-17th REF " << ref;
    }
    trr.on_activate(100, ref);  // keep the row in the sampler
  }
  EXPECT_EQ(capable, 2);
}

TEST(UndocumentedTrr, RefreshesBothNeighbors) {
  UndocumentedTrr trr;
  trr.on_activate(500, 0);
  std::vector<int> victims;
  for (int ref = 1; ref <= 17; ++ref) victims = trr.on_refresh(ref);
  EXPECT_TRUE(contains(victims, 499));
  EXPECT_TRUE(contains(victims, 501));
}

TEST(UndocumentedTrr, FirstActAfterCapableRefIsHeldForAFullPeriod) {
  UndocumentedTrr trr;
  // Reach the first TRR-capable REF with no activity at all.
  for (int ref = 1; ref <= 17; ++ref) {
    EXPECT_TRUE(trr.on_refresh(ref).empty());
  }
  // First ACT after the capable REF.
  trr.on_activate(1000, 0);
  // 16 windows of junk activity evict row 1000 from the recency sampler.
  int junk = 2000;
  for (int ref = 18; ref < 34; ++ref) {
    for (int j = 0; j < 5; ++j) trr.on_activate(junk + j, 0);
    junk += 16;
    EXPECT_TRUE(trr.on_refresh(ref).empty());
  }
  const auto victims = trr.on_refresh(34);
  EXPECT_TRUE(contains(victims, 999));
  EXPECT_TRUE(contains(victims, 1001));
}

TEST(UndocumentedTrr, HalfCountRuleDetectsHeavyHitters) {
  UndocumentedTrr trr;
  for (int ref = 1; ref <= 17; ++ref) trr.on_refresh(ref);
  // Window: row 3000 gets 5 of 9 activations (more than half), then four
  // trailing junk rows flush the sampler.
  trr.on_activate(9999, 0);  // absorbs the first-ACT latch
  // Close that window so 9999's single ACT cannot look like a heavy hitter
  // relative to an empty window.
  trr.on_refresh(18);
  for (int i = 0; i < 5; ++i) trr.on_activate(3000, 0);
  for (int j = 0; j < 4; ++j) trr.on_activate(5000 + 8 * j, 0);
  // REFs until the next capable one (REF 34).
  std::vector<int> victims;
  for (int ref = 19; ref <= 34; ++ref) victims = trr.on_refresh(ref);
  EXPECT_TRUE(contains(victims, 2999));
  EXPECT_TRUE(contains(victims, 3001));
}

TEST(UndocumentedTrr, ExactlyHalfIsNotDetected) {
  UndocumentedTrr trr;
  for (int ref = 1; ref <= 18; ++ref) trr.on_refresh(ref);
  trr.on_activate(7777, 0);  // absorbs the first-ACT latch
  // Row 3000: 4 of the window's 9 activations — not more than half.
  for (int i = 0; i < 4; ++i) trr.on_activate(3000, 0);
  for (int j = 0; j < 4; ++j) trr.on_activate(5000 + 8 * j, 0);
  std::vector<int> victims;
  for (int ref = 19; ref <= 34; ++ref) victims = trr.on_refresh(ref);
  EXPECT_FALSE(contains(victims, 2999));
  EXPECT_FALSE(contains(victims, 3001));
}

TEST(UndocumentedTrr, SamplerHoldsLastFourDistinctRows) {
  UndocumentedTrr trr;
  for (int row : {10, 20, 30, 40, 50}) trr.on_activate(row, 0);
  const auto& sampler = trr.sampler();
  ASSERT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.front(), 50);
  EXPECT_FALSE(std::find(sampler.begin(), sampler.end(), 10) !=
               sampler.end());
  // Re-activating an old row moves it to the front without duplication.
  trr.on_activate(20, 0);
  EXPECT_EQ(trr.sampler().front(), 20);
  EXPECT_EQ(trr.sampler().size(), 4u);
}

TEST(UndocumentedTrr, FourTrailingDummiesEvictAggressors) {
  // The Fig. 14 bypass geometry: aggressors hammered below the half-count
  // threshold, then N trailing distinct dummies. With N >= 4 the sampler
  // holds only dummies at the capable REF and the victims stay unprotected;
  // with N = 3 an aggressor survives in the sampler and gets neutralized.
  for (int dummies : {3, 4, 6}) {
    UndocumentedTrr trr;
    std::vector<int> victims;
    for (int ref = 1; ref <= 17; ++ref) {
      trr.on_activate(7000, 0);  // leading dummy absorbs first-ACT
      for (int i = 0; i < 30; ++i) {
        trr.on_activate(4000, 0);  // aggressor pair around victim 4001
        trr.on_activate(4002, 0);
      }
      for (int d = 0; d < dummies; ++d) {
        trr.on_activate(7000 + 8 * d, 0);
      }
      const auto v = trr.on_refresh(ref);
      victims.insert(victims.end(), v.begin(), v.end());
    }
    const bool victim_protected = contains(victims, 4001);
    EXPECT_EQ(victim_protected, dummies < 4) << "dummies=" << dummies;
  }
}

TEST(UndocumentedTrr, BulkActivationMatchesRepeatedSingles) {
  UndocumentedTrr a;
  UndocumentedTrr b;
  a.on_activate_bulk(42, 10, 0);
  for (int i = 0; i < 10; ++i) b.on_activate(42, 0);
  a.on_activate(43, 0);
  b.on_activate(43, 0);
  for (int ref = 1; ref <= 17; ++ref) {
    EXPECT_EQ(a.on_refresh(ref), b.on_refresh(ref));
  }
}

TEST(UndocumentedTrr, PendingCapacityEvictsOldest) {
  TrrParams params;
  params.pending_capacity = 2;
  UndocumentedTrr trr(params);
  for (int ref = 1; ref <= 17; ++ref) trr.on_refresh(ref);
  // Three windows, each with a distinct heavy hitter; capacity 2 keeps the
  // last two only. Every window also has >= 4 junk acts to flush the
  // sampler and a leading junk act for the first-ACT latch.
  int heavy = 100;
  for (int w = 0; w < 3; ++w) {
    trr.on_activate(8000, 0);  // absorbs the first-ACT latch in window 0
    for (int i = 0; i < 9; ++i) trr.on_activate(heavy, 0);
    for (int j = 0; j < 4; ++j) trr.on_activate(9000 + 8 * j, 0);
    trr.on_refresh(18 + w);
    heavy += 50;
  }
  std::vector<int> victims;
  for (int ref = 21; ref <= 34; ++ref) {
    const auto v = trr.on_refresh(ref);
    victims.insert(victims.end(), v.begin(), v.end());
  }
  EXPECT_FALSE(contains(victims, 99));   // evicted heavy hitter (row 100)
  EXPECT_TRUE(contains(victims, 149));   // row 150 kept
  EXPECT_TRUE(contains(victims, 199));   // row 200 kept
}

TEST(CounterTrr, TracksAndRefreshesTopRow) {
  CounterTrr trr;
  for (int i = 0; i < 100; ++i) trr.on_activate(600, 0);
  for (int i = 0; i < 3; ++i) trr.on_activate(700 + 8 * i, 0);
  std::vector<int> victims;
  for (int ref = 1; ref <= 17; ++ref) victims = trr.on_refresh(ref);
  EXPECT_TRUE(contains(victims, 599));
  EXPECT_TRUE(contains(victims, 601));
  // The handled row's counter resets; junk rows do not dominate.
  EXPECT_FALSE(trr.counters().contains(600));
}

TEST(CounterTrr, BoundedTableDecrements) {
  CounterTrrParams params;
  params.table_entries = 2;
  CounterTrr trr(params);
  trr.on_activate(1, 0);
  trr.on_activate(2, 0);
  trr.on_activate(3, 0);  // forces a decrement-all; both entries hit zero
  EXPECT_TRUE(trr.counters().empty());
  trr.on_activate_bulk(4, 10, 0);
  EXPECT_EQ(trr.counters().at(4), 10u);
}

TEST(CounterTrr, MissesSingleActivationAggressors) {
  // The discriminator vs the observed mechanism: a count-1 first ACT is
  // forgotten long before the capable REF when junk churns the table.
  CounterTrrParams params;
  params.table_entries = 4;
  CounterTrr trr(params);
  trr.on_activate(500, 0);
  for (int w = 0; w < 17; ++w) {
    for (int j = 0; j < 6; ++j) trr.on_activate(900 + 8 * j, 0);
  }
  std::vector<int> victims;
  for (int ref = 1; ref <= 17; ++ref) {
    const auto v = trr.on_refresh(ref);
    victims.insert(victims.end(), v.begin(), v.end());
  }
  EXPECT_FALSE(contains(victims, 499));
  EXPECT_FALSE(contains(victims, 501));
}

TEST(UndocumentedTrr, RejectsBadParams) {
  TrrParams params;
  params.trr_ref_interval = 0;
  EXPECT_THROW(UndocumentedTrr{params}, std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::trr
