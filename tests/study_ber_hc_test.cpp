#include <gtest/gtest.h>

#include "bender/platform.h"
#include "study/ber.h"
#include "study/hc_first.h"
#include "study/hcn.h"
#include "study/row_selection.h"

namespace hbmrd::study {
namespace {

struct StudyFixture : ::testing::Test {
  bender::Platform platform;
  bender::HbmChip& chip = platform.chip(2);  // identity mapping
  AddressMap map = AddressMap::from_scheme(chip.profile().mapping);
  dram::BankAddress bank{0, 0, 0};
  dram::RowAddress victim{bank, 4300};
};

TEST_F(StudyFixture, BerIsReproducibleAndBounded) {
  BerConfig config;
  const auto a = measure_row_ber(chip, map, victim, config);
  const auto b = measure_row_ber(chip, map, victim, config);
  EXPECT_EQ(a.bitflips, b.bitflips);
  EXPECT_EQ(a.flipped_bits, b.flipped_bits);
  EXPECT_GE(a.ber, 0.0);
  EXPECT_LE(a.ber, 1.0);
  EXPECT_EQ(a.bitflips, static_cast<int>(a.flipped_bits.size()));
  EXPECT_DOUBLE_EQ(a.ber, a.bitflips / 8192.0);
}

TEST_F(StudyFixture, BerMonotoneInHammerCount) {
  BerConfig low;
  low.hammer_count = 64 * 1024;
  BerConfig high;
  high.hammer_count = 512 * 1024;
  EXPECT_LE(measure_row_ber(chip, map, victim, low).bitflips,
            measure_row_ber(chip, map, victim, high).bitflips);
}

TEST_F(StudyFixture, HcFirstIsExactBoundary) {
  HcSearchConfig config;
  const auto hc = find_hc_first(chip, map, victim, config);
  ASSERT_TRUE(hc.has_value());
  EXPECT_GT(*hc, 1000u);
  // The chip's temperature drifts slightly between measurements (sensor
  // noise + ambient drift), so the boundary is exact only up to a small
  // dose perturbation; 2% margins dwarf the drift.
  EXPECT_GE(bitflips_at(chip, map, victim, *hc * 102 / 100, config), 1);
  EXPECT_EQ(bitflips_at(chip, map, victim, *hc * 98 / 100, config), 0);
}

TEST_F(StudyFixture, HcFirstRespectsSearchBound) {
  HcSearchConfig config;
  config.max_hammer_count = 2000;  // far below any real HC_first here
  EXPECT_FALSE(find_hc_first(chip, map, victim, config).has_value());
}

TEST_F(StudyFixture, HcnSequenceIsMonotoneAndNormalized) {
  HcSearchConfig config;
  const auto result = measure_hcn(chip, map, victim, config);
  ASSERT_TRUE(result.complete());
  for (int k = 1; k < kHcnFlips; ++k) {
    EXPECT_GE(*result.hc[static_cast<std::size_t>(k)],
              *result.hc[static_cast<std::size_t>(k - 1)]);
  }
  EXPECT_DOUBLE_EQ(result.normalized(0), 1.0);
  EXPECT_GE(result.normalized(kHcnFlips - 1), 1.0);
  EXPECT_EQ(result.additional_to_tenth(),
            *result.hc[9] - *result.hc[0]);
  // HC_nth found independently agrees with the incremental search up to
  // the thermal measurement drift (see HcFirstIsExactBoundary).
  const auto hc4 = find_hc_nth(chip, map, victim, 4, config);
  ASSERT_TRUE(hc4.has_value());
  EXPECT_NEAR(static_cast<double>(*hc4),
              static_cast<double>(*result.hc[3]),
              0.01 * static_cast<double>(*result.hc[3]));
}

TEST_F(StudyFixture, MeasureBankBerCoversRequestedRows) {
  BerConfig config;
  config.hammer_count = 32 * 1024;  // cheap sweep
  const std::vector<int> rows = {100, 200, 300};
  const auto results = measure_bank_ber(chip, map, bank, rows, config);
  ASSERT_EQ(results.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(results[i].victim.row, rows[i]);
  }
}

TEST_F(StudyFixture, PatternsChangeTheBitflipPicture) {
  // Obsv. 13: Rowstripe0 (victim all-0) and Rowstripe1 (victim all-1)
  // expose different cell populations; with a 58/42 true/anti cell split
  // Rowstripe1 must flip more at a high hammer count. Aggregated over
  // several rows because the per-row orientation draw is binomial.
  BerConfig rs0;
  rs0.pattern = DataPattern::kRowstripe0;
  rs0.hammer_count = 512 * 1024;
  BerConfig rs1 = rs0;
  rs1.pattern = DataPattern::kRowstripe1;
  int flips_rs0 = 0;
  int flips_rs1 = 0;
  for (int row = 4300; row < 4310; ++row) {
    flips_rs0 += measure_row_ber(chip, map, {bank, row}, rs0).bitflips;
    flips_rs1 += measure_row_ber(chip, map, {bank, row}, rs1).bitflips;
  }
  EXPECT_GT(flips_rs1, flips_rs0 * 11 / 10);
}

TEST_F(StudyFixture, EdgeVictimUsesSingleAggressor) {
  BerConfig config;
  const dram::RowAddress edge{bank, 0};
  // Must run without throwing despite having only one physical neighbour.
  const auto result = measure_row_ber(chip, map, edge, config);
  EXPECT_GE(result.bitflips, 0);
}

TEST(RowSelection, MatchesPaperSampling) {
  EXPECT_EQ(first_rows(3), (std::vector<int>{0, 1, 2}));
  const auto last = last_rows(2);
  EXPECT_EQ(last, (std::vector<int>{16382, 16383}));
  const auto middle = middle_rows(2);
  EXPECT_EQ(middle, (std::vector<int>{8191, 8192}));
  EXPECT_EQ(begin_middle_end_rows(32).size(), 96u);
  const auto spread = spread_rows(4);
  EXPECT_EQ(spread, (std::vector<int>{0, 4096, 8192, 12288}));
  EXPECT_TRUE(spread_rows(0).empty());
  EXPECT_EQ(spread_rows(100000).size(),
            static_cast<std::size_t>(dram::kRowsPerBank));
}

}  // namespace
}  // namespace hbmrd::study
