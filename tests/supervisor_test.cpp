// Process-isolated sharded campaigns: supervisor, shard handoff, merge.
//
// The contract under test is the same byte-identity the in-process runner
// guarantees, extended across process boundaries: for any shard count and
// any injected failure schedule — worker crashes mid-commit, wedged
// workers reaped by the hang watchdog, heartbeat loss, repeated crashes
// quarantining a shard, a kill in the middle of the merge itself — the
// supervised campaign's merged CSV checkpoint and JSONL journal are the
// exact bytes the uninterrupted `--jobs 1` run produces.
#include "runner/supervisor.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bender/platform.h"
#include "runner/fsck.h"
#include "runner/merge.h"
#include "runner/shard.h"
#include "util/store.h"

namespace hbmrd::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "supervisor_test_" + name;
}

/// Chip 2: ambient, identity row mapping, no documented TRR.
bender::HbmChip fresh_chip() {
  return bender::HbmChip(dram::chip_profiles()[2]);
}

const std::vector<std::string> kColumns = {"flips", "victim_byte"};

/// Self-initializing double-sided hammer trials (as runner_test.cpp), with
/// an optional per-trial wall-clock delay from `slow_from` onward so work
/// stealing has a straggler to steal from.
std::vector<CampaignRunner::Trial> make_trials(int n, int slow_from = -1,
                                               int slow_ms = 0) {
  std::vector<CampaignRunner::Trial> trials;
  for (int t = 0; t < n; ++t) {
    const int row = 64 + 8 * t;
    const auto pattern = static_cast<std::uint8_t>(0x40 + t);
    const bool slow = slow_from >= 0 && t >= slow_from;
    trials.push_back(
        {"row" + std::to_string(row),
         [row, pattern, slow, slow_ms](bender::ChipSession& session)
             -> std::vector<std::string> {
           if (slow) {
             std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
           }
           const dram::RowAddress victim{{0, 0, 0}, row};
           session.write_row(victim, dram::RowBits::filled(pattern));
           session.write_row({{0, 0, 0}, row - 1},
                             dram::RowBits::filled(0xFF));
           session.write_row({{0, 0, 0}, row + 1},
                             dram::RowBits::filled(0xFF));
           const std::array<int, 2> aggressors = {row - 1, row + 1};
           session.hammer({0, 0, 0}, aggressors, 20000);
           const auto bits = session.read_row(victim);
           return {std::to_string(
                       bits.count_diff(dram::RowBits::filled(pattern))),
                   std::to_string(bits.words()[0] & 0xFF)};
         }});
  }
  return trials;
}

RunnerConfig base_config(const std::string& tag) {
  RunnerConfig config;
  config.result_columns = kColumns;
  config.results_path = tmp_path(tag + ".csv");
  config.journal_path = tmp_path(tag + ".jsonl");
  config.guard.enabled = false;
  return config;
}

void clear_artifacts(const RunnerConfig& config, std::uint64_t max_shards) {
  auto store = util::default_store();
  for (const auto& base : {config.results_path, config.journal_path}) {
    store->remove(base);
    store->remove(base + ".manifest");
    store->remove(base + ".quarantine");
    for (std::uint64_t id = 0; id < max_shards + 8; ++id) {
      store->remove(shard_artifact_path(base, id));
      store->remove(shard_artifact_path(base, id) + ".manifest");
      store->remove(shard_artifact_path(base, id) + ".quarantine");
    }
  }
  store->remove(shard_index_path(config.results_path));
}

/// The uninterrupted single-process `--jobs 1` run: the golden bytes.
struct Golden {
  std::string csv;
  std::string journal;
};

Golden golden_run(const std::string& tag,
                  const std::vector<CampaignRunner::Trial>& trials,
                  const fault::FaultPlanConfig& faults = {}) {
  auto config = base_config(tag);
  config.faults = faults;
  config.faults.worker = {};  // worker faults fire in shard mode only
  clear_artifacts(config, 0);
  auto chip = fresh_chip();
  CampaignRunner campaign(chip, config);
  const auto report = campaign.run(trials);
  EXPECT_FALSE(report.aborted);
  return {slurp(config.results_path), slurp(config.journal_path)};
}

/// Supervised fork-mode run; quick watchdog/backoff so injected hangs
/// cost tenths of a second, not the production 30 s deadline.
SupervisorConfig quick_supervision(std::uint64_t shards) {
  SupervisorConfig config;
  config.shards = shards;
  config.hang_timeout_s = 1.0;
  config.restart_backoff = {5, 0.02, 0.1};
  return config;
}

const std::uint64_t kShardCounts[] = {1, 2, 4};

TEST(ShardSetTest, SerializeParseRoundtrip) {
  ShardSet set;
  set.trial_count = 12;
  set.shards = {{0, 0, 5, ShardSpec::Status::kDone},
                {1, 5, 9, ShardSpec::Status::kPending},
                {2, 9, 12, ShardSpec::Status::kQuarantined}};
  const auto text = set.serialize();
  const auto parsed = ShardSet::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trial_count, 12u);
  ASSERT_EQ(parsed->shards.size(), 3u);
  EXPECT_EQ(parsed->shards[1].lo, 5u);
  EXPECT_EQ(parsed->shards[1].hi, 9u);
  EXPECT_EQ(parsed->shards[0].status, ShardSpec::Status::kDone);
  EXPECT_EQ(parsed->shards[2].status, ShardSpec::Status::kQuarantined);
}

TEST(ShardSetTest, CorruptIndexRejected) {
  ShardSet set;
  set.trial_count = 4;
  set.shards = {{0, 0, 4, ShardSpec::Status::kPending}};
  auto text = set.serialize();
  EXPECT_FALSE(ShardSet::parse("").has_value());
  EXPECT_FALSE(ShardSet::parse("not a shard index\n").has_value());
  // Flip one digit inside a sealed line: the CRC must catch it.
  const auto pos = text.find("shard,0,0,4");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 8] = '1';
  EXPECT_FALSE(ShardSet::parse(text).has_value());
  // Shard-count mismatch between header and lines.
  auto truncated = set.serialize();
  truncated.resize(truncated.find('\n') + 1);
  EXPECT_FALSE(ShardSet::parse(truncated).has_value());
}

TEST(SupervisorTest, CleanShardedRunMatchesSerial) {
  reset_graceful_stop();
  const auto trials = make_trials(12);
  const auto golden = golden_run("clean_golden", trials);
  for (const auto shards : kShardCounts) {
    auto config = base_config("clean_s" + std::to_string(shards));
    clear_artifacts(config, shards);
    auto chip = fresh_chip();
    Supervisor supervisor(chip, config, quick_supervision(shards));
    const auto report = supervisor.run(trials);
    ASSERT_FALSE(report.campaign.aborted) << report.campaign.abort_reason;
    EXPECT_EQ(report.spawns, shards);
    EXPECT_EQ(report.crashes, 0u);
    EXPECT_EQ(report.campaign.completed, 12u);
    EXPECT_EQ(slurp(config.results_path), golden.csv) << shards << " shards";
    EXPECT_EQ(slurp(config.journal_path), golden.journal)
        << shards << " shards";
  }
}

TEST(SupervisorTest, CrashInCommitRecoversByteIdentical) {
  reset_graceful_stop();
  const auto trials = make_trials(12);
  const auto golden = golden_run("crash_golden", trials);
  for (const auto shards : kShardCounts) {
    auto config = base_config("crash_s" + std::to_string(shards));
    // SIGKILL inside trial 5's commit, after the journal flush and before
    // the CSV row: the widest window the write-ahead discipline allows.
    config.faults.worker.crash_at_trial = 5;
    clear_artifacts(config, shards);
    auto chip = fresh_chip();
    Supervisor supervisor(chip, config, quick_supervision(shards));
    const auto report = supervisor.run(trials);
    ASSERT_FALSE(report.campaign.aborted) << report.campaign.abort_reason;
    EXPECT_GE(report.crashes, 1u);
    EXPECT_GE(report.restarts, 1u);
    EXPECT_GT(report.spawns, shards);
    EXPECT_EQ(slurp(config.results_path), golden.csv) << shards << " shards";
    EXPECT_EQ(slurp(config.journal_path), golden.journal)
        << shards << " shards";
  }
}

TEST(SupervisorTest, HangIsWatchdogKilledAndResumed) {
  reset_graceful_stop();
  const auto trials = make_trials(12);
  const auto golden = golden_run("hang_golden", trials);
  for (const auto shards : kShardCounts) {
    auto config = base_config("hang_s" + std::to_string(shards));
    config.faults.worker.hang_at_trial = 7;  // wedge before trial 7
    clear_artifacts(config, shards);
    auto chip = fresh_chip();
    Supervisor supervisor(chip, config, quick_supervision(shards));
    const auto report = supervisor.run(trials);
    ASSERT_FALSE(report.campaign.aborted) << report.campaign.abort_reason;
    EXPECT_GE(report.hangs_killed, 1u);
    EXPECT_GE(report.crashes, 1u);  // a SIGKILLed worker is a crash
    EXPECT_EQ(slurp(config.results_path), golden.csv) << shards << " shards";
    EXPECT_EQ(slurp(config.journal_path), golden.journal)
        << shards << " shards";
  }
}

TEST(SupervisorTest, HeartbeatDropIsReapedNotTrusted) {
  reset_graceful_stop();
  const auto trials = make_trials(12);
  const auto golden = golden_run("drop_golden", trials);
  for (const auto shards : kShardCounts) {
    auto config = base_config("drop_s" + std::to_string(shards));
    // The worker keeps committing but goes silent after 4 trials — and
    // wedges instead of exiting, so only the watchdog can end it. Its
    // committed rows must survive the handoff.
    config.faults.worker.drop_heartbeats_after = 4;
    clear_artifacts(config, shards);
    auto chip = fresh_chip();
    Supervisor supervisor(chip, config, quick_supervision(shards));
    const auto report = supervisor.run(trials);
    ASSERT_FALSE(report.campaign.aborted) << report.campaign.abort_reason;
    EXPECT_GE(report.hangs_killed, 1u);
    EXPECT_EQ(slurp(config.results_path), golden.csv) << shards << " shards";
    EXPECT_EQ(slurp(config.journal_path), golden.journal)
        << shards << " shards";
  }
}

TEST(SupervisorTest, RepeatedCrashQuarantinesThenOperatorResumeClears) {
  reset_graceful_stop();
  const auto trials = make_trials(8);
  const auto golden = golden_run("quarantine_golden", trials);
  auto config = base_config("quarantine");
  // The crash refires for every incarnation: no progress is ever made on
  // the shard owning trial 2, so the supervisor must quarantine it.
  config.faults.worker.crash_at_trial = 2;
  config.faults.worker.repeat_incarnations = 99;
  clear_artifacts(config, 2);
  auto supervision = quick_supervision(2);
  supervision.max_restarts = 2;
  {
    auto chip = fresh_chip();
    Supervisor supervisor(chip, config, supervision);
    const auto report = supervisor.run(trials);
    EXPECT_TRUE(report.campaign.aborted);
    EXPECT_EQ(report.campaign.abort_reason, "shard-quarantined");
    EXPECT_EQ(report.shards_quarantined, 1u);
    ASSERT_EQ(report.quarantined_shards.size(), 1u);
    // No canonical artifacts: the merge refuses an incomplete campaign.
    MergeOptions merge;
    merge.results_path = config.results_path;
    merge.journal_path = config.journal_path;
    EXPECT_FALSE(merge_shards(merge).ok);
  }
  // Operator resume: the quarantined shard gets a fresh failure budget;
  // with the fault schedule cleared the campaign completes and the merged
  // bytes are the uninterrupted run's.
  config.faults.worker = {};
  config.resume = true;
  auto chip = fresh_chip();
  Supervisor supervisor(chip, config, supervision);
  const auto report = supervisor.run(trials);
  ASSERT_FALSE(report.campaign.aborted) << report.campaign.abort_reason;
  EXPECT_EQ(slurp(config.results_path), golden.csv);
  EXPECT_EQ(slurp(config.journal_path), golden.journal);
}

/// Delegating store that fails the first atomic_replace of one path —
/// the supervisor dying in the middle of publishing the merge.
class MergeCrashStore : public util::Store {
 public:
  MergeCrashStore(std::shared_ptr<util::Store> base, std::string fail_path)
      : base_(std::move(base)), fail_path_(std::move(fail_path)) {}

  std::unique_ptr<File> open(const std::string& path,
                             bool truncate) override {
    return base_->open(path, truncate);
  }
  std::optional<std::string> read(const std::string& path) override {
    return base_->read(path);
  }
  void atomic_replace(const std::string& path,
                      std::string_view content) override {
    if (path == fail_path_ && !fired_) {
      fired_ = true;
      throw util::StoreError("atomic_replace", path, "injected merge kill");
    }
    base_->atomic_replace(path, content);
  }
  void truncate(const std::string& path, std::uint64_t size) override {
    base_->truncate(path, size);
  }
  bool remove(const std::string& path) override {
    return base_->remove(path);
  }
  [[nodiscard]] bool fired() const { return fired_; }

 private:
  std::shared_ptr<util::Store> base_;
  std::string fail_path_;
  bool fired_ = false;
};

TEST(SupervisorTest, KillDuringMergeIsRerunnable) {
  reset_graceful_stop();
  const auto trials = make_trials(8);
  const auto golden = golden_run("mergekill_golden", trials);
  for (const auto shards : kShardCounts) {
    auto config = base_config("mergekill_s" + std::to_string(shards));
    clear_artifacts(config, shards);
    // Die after the canonical CSV lands but before the journal does: the
    // nastiest partial-merge state.
    auto store = std::make_shared<MergeCrashStore>(util::default_store(),
                                                   config.journal_path);
    config.store = store;
    auto chip = fresh_chip();
    Supervisor supervisor(chip, config, quick_supervision(shards));
    EXPECT_THROW((void)supervisor.run(trials), util::StoreError);
    EXPECT_TRUE(store->fired());
    // The merge is idempotent over untouched shard stores: rerunning it
    // (what `campaign_fsck --merge-shards` does) produces the golden
    // bytes, and rerunning it again changes nothing.
    MergeOptions merge;
    merge.results_path = config.results_path;
    merge.journal_path = config.journal_path;
    for (int attempt = 0; attempt < 2; ++attempt) {
      const auto merged = merge_shards(merge);
      ASSERT_TRUE(merged.ok) << (merged.issues.empty()
                                     ? "no issues"
                                     : merged.issues.front().what);
      EXPECT_EQ(slurp(config.results_path), golden.csv)
          << shards << " shards";
      EXPECT_EQ(slurp(config.journal_path), golden.journal)
          << shards << " shards";
    }
  }
}

TEST(SupervisorTest, WorkStealingSplitsTheStraggler) {
  reset_graceful_stop();
  // First half instant, second half 150 ms of wall clock per trial: shard
  // 0 finishes immediately and must steal from the straggling shard 1.
  const auto trials = make_trials(12, /*slow_from=*/6, /*slow_ms=*/150);
  const auto golden = golden_run("steal_golden", trials);
  auto config = base_config("steal");
  clear_artifacts(config, 2);
  auto supervision = quick_supervision(2);
  supervision.steal_min_remaining = 3;
  auto chip = fresh_chip();
  Supervisor supervisor(chip, config, supervision);
  const auto report = supervisor.run(trials);
  ASSERT_FALSE(report.campaign.aborted) << report.campaign.abort_reason;
  EXPECT_GE(report.shards_stolen, 1u);
  EXPECT_GT(report.final_shards, 2u);
  EXPECT_EQ(slurp(config.results_path), golden.csv);
  EXPECT_EQ(slurp(config.journal_path), golden.journal);
}

TEST(GracefulStopTest, SigtermStopsAtCommitBoundaryAndResumes) {
  // Satellite regression: a campaign bench receiving SIGTERM must
  // checkpoint-flush and stop — no torn tail — and --resume must then
  // reproduce the uninterrupted bytes.
  reset_graceful_stop();
  const auto trials = make_trials(10);
  const auto golden = golden_run("sigterm_golden", trials);

  auto config = base_config("sigterm");
  clear_artifacts(config, 0);
  auto interrupted = trials;
  // The signal lands mid-campaign, from trial 4's body — exactly what an
  // operator's kill(1) during a sweep looks like to the process.
  interrupted[3].body = [base = trials[3].body](bender::ChipSession& s) {
    install_graceful_stop();
    std::raise(SIGTERM);
    return base(s);
  };
  {
    auto chip = fresh_chip();
    CampaignRunner campaign(chip, config);
    const auto report = campaign.run(interrupted);
    EXPECT_TRUE(report.aborted);
    EXPECT_EQ(report.abort_reason, "signal");
    EXPECT_LT(report.completed, 10u);
  }
  // The stopped artifacts are clean: fsck finds nothing to repair.
  FsckOptions fsck;
  fsck.results_path = config.results_path;
  fsck.journal_path = config.journal_path;
  EXPECT_TRUE(campaign_fsck(fsck).clean());

  reset_graceful_stop();
  config.resume = true;
  auto chip = fresh_chip();
  CampaignRunner campaign(chip, config);
  const auto report = campaign.run(trials);
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(slurp(config.results_path), golden.csv);
  EXPECT_EQ(slurp(config.journal_path), golden.journal);
}

}  // namespace
}  // namespace hbmrd::runner
