#include "dram/chip_profiles.h"

#include <gtest/gtest.h>

#include <set>

namespace hbmrd::dram {
namespace {

TEST(ChipProfiles, SixDistinctChips) {
  const auto profiles = chip_profiles();
  ASSERT_EQ(profiles.size(), static_cast<std::size_t>(kChipCount));
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < kChipCount; ++i) {
    const auto& p = profiles[static_cast<std::size_t>(i)];
    EXPECT_EQ(p.index, i);
    EXPECT_EQ(p.label, "Chip " + std::to_string(i));
    seeds.insert(p.disturb.seed);
  }
  EXPECT_EQ(seeds.size(), static_cast<std::size_t>(kChipCount));
}

TEST(ChipProfiles, CalibrationFactorsInRange) {
  for (const auto& p : chip_profiles()) {
    // Chip factors within ~25% of nominal (Obsv. 5's minima differ by
    // at most 1.25x across chips).
    EXPECT_GT(p.disturb.chip_factor, 0.8);
    EXPECT_LT(p.disturb.chip_factor, 1.25);
    EXPECT_GT(p.disturb.sigma_die, 0.0);
    EXPECT_GT(p.ambient_temperature_c, 40.0);
    EXPECT_LT(p.ambient_temperature_c, 70.0);
  }
}

TEST(ChipProfiles, Chip5HasTheTightDieSpread) {
  const auto profiles = chip_profiles();
  for (int i = 0; i < 5; ++i) {
    EXPECT_GT(profiles[static_cast<std::size_t>(i)].disturb.sigma_die,
              2.0 * profiles[5].disturb.sigma_die)
        << "chip " << i;
  }
}

TEST(ChipProfiles, MappingSchemesCoverTheFamily) {
  std::set<MappingScheme> schemes;
  for (const auto& p : chip_profiles()) schemes.insert(p.mapping);
  EXPECT_GE(schemes.size(), 3u);
}

TEST(ChipProfiles, SeedChangesSilicon) {
  const auto a = chip_profiles(1);
  const auto b = chip_profiles(2);
  for (int i = 0; i < kChipCount; ++i) {
    EXPECT_NE(a[static_cast<std::size_t>(i)].disturb.seed,
              b[static_cast<std::size_t>(i)].disturb.seed);
  }
  // The calibration constants themselves are seed-independent.
  EXPECT_EQ(a[0].disturb.chip_factor, chip_profiles(3)[0].disturb.chip_factor);
}

TEST(ChipProfiles, OnlyChip0CarriesRigAndTrr) {
  const auto profiles = chip_profiles();
  EXPECT_TRUE(profiles[0].has_undocumented_trr);
  EXPECT_TRUE(profiles[0].temperature_controlled);
  EXPECT_DOUBLE_EQ(profiles[0].target_temperature_c, 82.0);
  for (int i = 1; i < kChipCount; ++i) {
    EXPECT_FALSE(profiles[static_cast<std::size_t>(i)].has_undocumented_trr);
    EXPECT_FALSE(
        profiles[static_cast<std::size_t>(i)].temperature_controlled);
  }
}

}  // namespace
}  // namespace hbmrd::dram
