#include "bender/executor.h"

#include <gtest/gtest.h>

#include <array>

#include "bender/program.h"

namespace hbmrd::bender {
namespace {

constexpr dram::BankAddress kBank{0, 0, 0};
constexpr dram::BankAddress kOtherBank{2, 1, 5};

dram::StackConfig test_config() {
  dram::StackConfig config;
  config.disturb.seed = 0xEEECull;
  return config;
}

struct ExecutorFixture : ::testing::Test {
  dram::Stack stack{test_config()};
  Executor executor{&stack};
};

TEST_F(ExecutorFixture, WriteReadRoundTrip) {
  ProgramBuilder builder;
  builder.write_row(kBank, 42, dram::RowBits::filled(0x3C));
  builder.read_row(kBank, 42);
  const auto result = executor.run(std::move(builder).build());
  ASSERT_EQ(result.row_count(), 1u);
  EXPECT_EQ(result.row(0), dram::RowBits::filled(0x3C));
  EXPECT_GT(result.end_cycle, result.start_cycle);
}

TEST_F(ExecutorFixture, ReadsMultipleRowsInOrder) {
  ProgramBuilder builder;
  builder.write_row(kBank, 1, dram::RowBits::filled(0x01));
  builder.write_row(kOtherBank, 2, dram::RowBits::filled(0x02));
  builder.read_row(kBank, 1);
  builder.read_row(kOtherBank, 2);
  const auto result = executor.run(std::move(builder).build());
  ASSERT_EQ(result.row_count(), 2u);
  EXPECT_EQ(result.row(0), dram::RowBits::filled(0x01));
  EXPECT_EQ(result.row(1), dram::RowBits::filled(0x02));
  EXPECT_THROW((void)result.row(2), std::out_of_range);
}

TEST_F(ExecutorFixture, SchedulesMinimumLegalTiming) {
  const auto& t = stack.timing();
  ProgramBuilder builder;
  builder.act(kBank, 0).pre(kBank).act(kBank, 1).pre(kBank);
  const auto result = executor.run(std::move(builder).build());
  // Two ACT/PRE pairs cannot complete faster than tRC + tRAS.
  EXPECT_GE(result.elapsed(), t.t_rc + t.t_ras);
}

TEST_F(ExecutorFixture, WaitExtendsRowOnTime) {
  const auto& t = stack.timing();
  ProgramBuilder with_wait;
  with_wait.act(kBank, 0).wait(500).pre(kBank);
  const auto slow = executor.run(std::move(with_wait).build());
  EXPECT_GE(slow.elapsed(), 500u);

  // A fresh session measures the no-wait case without carry-over gating
  // from the previous program's tRC window.
  dram::Stack fresh_stack{test_config()};
  Executor fresh_executor{&fresh_stack};
  ProgramBuilder without;
  without.act(kBank, 0).pre(kBank);
  const auto fast = fresh_executor.run(std::move(without).build());
  EXPECT_LE(fast.elapsed(), t.t_ras + 2);
}

TEST_F(ExecutorFixture, HammerFastPathMatchesIterativeLoop) {
  // Same program shape, one via the analytic fast path (pure ACT/PRE loop)
  // and one forced through iterative execution by a REF in the body of a
  // second chip's run. Instead: compare fast path against a manually
  // unrolled program on a second identical stack.
  constexpr int kVictim = 4300;
  constexpr std::uint64_t kCount = 200000;
  auto run_setup = [](dram::Stack&, Executor& executor, bool fast) {
    ProgramBuilder init;
    init.write_row(kBank, kVictim, dram::RowBits::filled(0x55));
    init.write_row(kBank, kVictim - 1, dram::RowBits::filled(0xAA));
    init.write_row(kBank, kVictim + 1, dram::RowBits::filled(0xAA));
    executor.run(std::move(init).build());
    const std::array<int, 2> rows = {kVictim - 1, kVictim + 1};
    if (fast) {
      ProgramBuilder hammer;
      hammer.hammer(kBank, rows, kCount);
      executor.run(std::move(hammer).build());
    } else {
      // Unrolled: no loop instruction, so no fast path. Use a smaller
      // count and finish with the fast path for the rest to keep runtime
      // sane while still crossing the code seam.
      ProgramBuilder unrolled;
      for (int i = 0; i < 1000; ++i) {
        for (int row : rows) unrolled.act(kBank, row).pre(kBank);
      }
      executor.run(std::move(unrolled).build());
      ProgramBuilder hammer;
      hammer.hammer(kBank, rows, kCount - 1000);
      executor.run(std::move(hammer).build());
    }
    ProgramBuilder read;
    read.read_row(kBank, kVictim);
    return executor.run(std::move(read).build()).row(0);
  };

  dram::Stack fast_stack{test_config()};
  Executor fast_executor{&fast_stack};
  dram::Stack slow_stack{test_config()};
  Executor slow_executor{&slow_stack};
  const auto fast_row = run_setup(fast_stack, fast_executor, true);
  const auto slow_row = run_setup(slow_stack, slow_executor, false);
  EXPECT_EQ(fast_row, slow_row);
  EXPECT_GT(fast_row.count_diff(dram::RowBits::filled(0x55)), 0);
}

TEST_F(ExecutorFixture, LoopWithRefRunsIteratively) {
  const auto& t = stack.timing();
  ProgramBuilder builder;
  builder.loop_begin(10);
  builder.ref(0);
  builder.wait(t.t_refi - 1);
  builder.loop_end();
  const auto result = executor.run(std::move(builder).build());
  EXPECT_GE(result.elapsed(), 10 * t.t_refi);
}

TEST_F(ExecutorFixture, RefRespectsTrfcCadence) {
  const auto& t = stack.timing();
  ProgramBuilder builder;
  builder.ref(0).ref(0).ref(0);
  const auto result = executor.run(std::move(builder).build());
  EXPECT_GE(result.elapsed(), 2 * t.t_rfc);
}

TEST_F(ExecutorFixture, PreAllClosesEveryBankOfChannel) {
  ProgramBuilder builder;
  builder.act({0, 0, 3}, 10).act({0, 1, 7}, 20);
  builder.wait(stack.timing().t_ras + 10);
  builder.pre_all(0);
  builder.ref(0);  // would throw if any bank stayed open
  EXPECT_NO_THROW(executor.run(std::move(builder).build()));
}

TEST_F(ExecutorFixture, MrsUpdatesModeRegisters) {
  ProgramBuilder builder;
  builder.mrs(4, 0x1);
  executor.run(std::move(builder).build());
  EXPECT_TRUE(stack.mode_registers().ecc_enabled());
}

TEST_F(ExecutorFixture, AdvanceMovesIdleClock) {
  const auto before = executor.now();
  executor.advance(12345);
  EXPECT_EQ(executor.now(), before + 12345);
}

TEST_F(ExecutorFixture, RejectsMalformedPrograms) {
  Program stray;
  stray.instructions.push_back(LoopEndInstr{});
  EXPECT_THROW(executor.run(stray), std::invalid_argument);

  Program unterminated;
  unterminated.instructions.push_back(LoopBeginInstr{3});
  unterminated.instructions.push_back(ActInstr{kBank, 1});
  EXPECT_THROW(executor.run(unterminated), std::invalid_argument);
}

TEST(Executor, RejectsNullStack) {
  EXPECT_THROW(Executor(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::bender
