// Threshold cache: the candidate-driven sense scan must be bit-identical
// to the uncached full scan, and the summary's sorted head must agree with
// the fault model's per-cell thresholds (HC_first = weakest cell).
#include "disturb/threshold_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <limits>
#include <memory>

#include "dram/chip_profiles.h"
#include "dram/stack.h"

namespace hbmrd::disturb {
namespace {

dram::StackConfig cache_config(std::shared_ptr<ThresholdCache> cache) {
  dram::StackConfig config;
  config.disturb = dram::chip_profiles()[2].disturb;
  config.threshold_cache = std::move(cache);
  return config;
}

struct StackFixture {
  explicit StackFixture(std::shared_ptr<ThresholdCache> cache = nullptr)
      : stack(cache_config(std::move(cache))) {}

  dram::Stack stack;
  dram::TimingParams timing{};
  dram::Cycle now = 1000;

  void write_row(const dram::RowAddress& addr, const dram::RowBits& bits) {
    stack.activate(addr, now);
    std::array<std::uint64_t, dram::kWordsPerColumn> column;
    for (int c = 0; c < dram::kColumns; ++c) {
      bits.get_column(c, column);
      stack.write_column(addr.bank, c, column, now + timing.t_rcd + 1);
    }
    now += timing.t_ras + 100;
    stack.precharge(addr.bank, now);
    now += timing.t_rp + 100;
  }

  dram::RowBits read_row(const dram::RowAddress& addr) {
    stack.activate(addr, now);
    dram::RowBits bits;
    std::array<std::uint64_t, dram::kWordsPerColumn> column;
    for (int c = 0; c < dram::kColumns; ++c) {
      stack.read_column(addr.bank, c, column, now + timing.t_rcd + 1);
      bits.set_column(c, column);
    }
    now += timing.t_ras + 100;
    stack.precharge(addr.bank, now);
    now += timing.t_rp + 100;
    return bits;
  }

  /// Double-sided hammer, then read the victim back.
  dram::RowBits hammer_and_sense(int victim, std::uint64_t pulses) {
    const dram::BankAddress bank{0, 0, 0};
    write_row({bank, victim}, dram::RowBits::filled(0x55));
    write_row({bank, victim - 1}, dram::RowBits::filled(0xFF));
    write_row({bank, victim + 1}, dram::RowBits::filled(0xFF));
    const std::array<dram::HammerStep, 2> steps = {
        dram::HammerStep{victim - 1, timing.t_ras},
        dram::HammerStep{victim + 1, timing.t_ras}};
    now = stack.bulk_hammer(bank, steps, pulses, now) + 100;
    return read_row({bank, victim});
  }
};

TEST(ThresholdCache, CachedSenseIsBitIdenticalToFullScan) {
  for (const std::uint64_t pulses :
       {std::uint64_t{20000}, std::uint64_t{80000}, std::uint64_t{300000}}) {
    StackFixture cold;
    StackFixture cached(std::make_shared<ThresholdCache>());
    const auto a = cold.hammer_and_sense(128, pulses);
    const auto b = cached.hammer_and_sense(128, pulses);
    EXPECT_EQ(a.count_diff(b), 0) << "pulses=" << pulses;
    EXPECT_EQ(cold.stack.total_counters().bitflips_materialized,
              cached.stack.total_counters().bitflips_materialized)
        << "pulses=" << pulses;
  }
}

TEST(ThresholdCache, RepeatedSensesHitTheCache) {
  auto cache = std::make_shared<ThresholdCache>();
  StackFixture f(cache);
  (void)f.hammer_and_sense(128, 150000);
  (void)f.hammer_and_sense(128, 150000);
  const auto totals = cache->totals();
  EXPECT_GT(totals.misses, 0u);
  EXPECT_GT(totals.hits, 0u) << "second hammer of the same row must hit";
}

TEST(ThresholdCache, SummarySortedHeadIsTheRowsWeakestCell) {
  const FaultModel model(dram::chip_profiles()[2].disturb);
  const dram::BankAddress bank{0, 0, 0};
  const int row = 200;
  const auto summary = build_row_summary(model, bank, row);

  ASSERT_EQ(summary.cell_u.size(), static_cast<std::size_t>(dram::kRowBits));
  ASSERT_EQ(summary.outlier_by_u.size() + summary.weak_by_u.size() +
                summary.bulk_by_u.size(),
            static_cast<std::size_t>(dram::kRowBits));
  ASSERT_EQ(summary.leaky_by_u.size() + summary.normal_by_u.size(),
            static_cast<std::size_t>(dram::kRowBits));

  // Sorted ascending by uniform within each population.
  const auto sorted = [&](const std::vector<int>& order,
                          const std::vector<double>& u) {
    return std::is_sorted(order.begin(), order.end(), [&](int a, int b) {
      return u[static_cast<std::size_t>(a)] < u[static_cast<std::size_t>(b)];
    });
  };
  EXPECT_TRUE(sorted(summary.outlier_by_u, summary.cell_u));
  EXPECT_TRUE(sorted(summary.weak_by_u, summary.cell_u));
  EXPECT_TRUE(sorted(summary.bulk_by_u, summary.cell_u));
  EXPECT_TRUE(sorted(summary.leaky_by_u, summary.retention_u));
  EXPECT_TRUE(sorted(summary.normal_by_u, summary.retention_u));

  // HC_first: the minimum cell threshold over the whole row is attained at
  // the head of one of the sorted population lists (the threshold is
  // monotone in the uniform within a population).
  double min_threshold = std::numeric_limits<double>::max();
  for (int bit = 0; bit < dram::kRowBits; ++bit) {
    min_threshold =
        std::min(min_threshold, model.cell_threshold(bank, row, bit));
  }
  double head_min = std::numeric_limits<double>::max();
  for (const auto* order :
       {&summary.outlier_by_u, &summary.weak_by_u, &summary.bulk_by_u}) {
    if (!order->empty()) {
      head_min =
          std::min(head_min, model.cell_threshold(bank, row, order->front()));
    }
  }
  EXPECT_DOUBLE_EQ(min_threshold, head_min);
}

TEST(ThresholdCache, LruEvictsBeyondCapacity) {
  const FaultModel model(dram::chip_profiles()[2].disturb);
  BankThresholdCache cache({0, 0, 0}, 2);
  (void)cache.get(model, 1);
  (void)cache.get(model, 2);
  (void)cache.get(model, 3);  // evicts row 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(2), nullptr);
  EXPECT_NE(cache.peek(3), nullptr);
}

}  // namespace
}  // namespace hbmrd::disturb
