// Parser hardening: corrupt artifact text must never terminate recovery
// via an uncaught parse exception.
//
// Two layers under test:
//
//   * util::parse — exception-free, full-token numeric parsing (the only
//     numeric path artifact readers are allowed to use);
//   * the recovery readers themselves — Manifest::parse and the
//     checkpoint/journal resume path, fuzzed cell by cell with the
//     classic corruption shapes (truncation, non-digits, overflow, empty
//     cells, flipped bytes). The only exception allowed out of a resume is
//     CheckpointMismatchError, the actionable "this checkpoint does not
//     belong to this campaign" diagnostic.
#include "util/parse.h"

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bender/platform.h"
#include "runner/checkpoint.h"
#include "runner/runner.h"
#include "util/crc32c.h"
#include "util/csv.h"
#include "util/store.h"

namespace hbmrd {
namespace {

// ---------------------------------------------------------------- util ---

TEST(ParseU64, AcceptsFullDecimalTokensOnly) {
  EXPECT_EQ(util::parse_u64("0"), 0u);
  EXPECT_EQ(util::parse_u64("18446744073709551615"),
            18446744073709551615ull);
  EXPECT_EQ(util::parse_u64(""), std::nullopt);
  EXPECT_EQ(util::parse_u64("12x"), std::nullopt);
  EXPECT_EQ(util::parse_u64(" 12"), std::nullopt);
  EXPECT_EQ(util::parse_u64("12 "), std::nullopt);
  EXPECT_EQ(util::parse_u64("-1"), std::nullopt);
  EXPECT_EQ(util::parse_u64("18446744073709551616"), std::nullopt);  // 2^64
  EXPECT_EQ(util::parse_u64("99999999999999999999999"), std::nullopt);
  EXPECT_EQ(util::parse_u64("0x10"), std::nullopt);  // base 10: no prefixes
}

TEST(ParseU64, BaseZeroAutoDetectsRadix) {
  EXPECT_EQ(util::parse_u64("0x1f", 0), 31u);
  EXPECT_EQ(util::parse_u64("0X1F", 0), 31u);
  EXPECT_EQ(util::parse_u64("017", 0), 15u);  // octal
  EXPECT_EQ(util::parse_u64("17", 0), 17u);
  EXPECT_EQ(util::parse_u64("0", 0), 0u);
  EXPECT_EQ(util::parse_u64("0x", 0), std::nullopt);
  EXPECT_EQ(util::parse_u64("019", 0), std::nullopt);  // 9 is not octal
}

TEST(ParseI64, HandlesSignsAndRange) {
  EXPECT_EQ(util::parse_i64("-42"), -42);
  EXPECT_EQ(util::parse_i64("+42"), 42);
  EXPECT_EQ(util::parse_i64("9223372036854775807"),
            9223372036854775807ll);
  EXPECT_EQ(util::parse_i64("9223372036854775808"), std::nullopt);
  EXPECT_EQ(util::parse_i64("--1"), std::nullopt);
  EXPECT_EQ(util::parse_i64("-0x10", 0), -16);
  EXPECT_EQ(util::parse_i64(""), std::nullopt);
  EXPECT_EQ(util::parse_i64("-"), std::nullopt);
}

TEST(ParseDouble, FullTokenFiniteFormats) {
  EXPECT_EQ(util::parse_double("1.5"), 1.5);
  EXPECT_EQ(util::parse_double("-3e-4"), -3e-4);
  EXPECT_EQ(util::parse_double("+2"), 2.0);
  EXPECT_EQ(util::parse_double(""), std::nullopt);
  EXPECT_EQ(util::parse_double("1.5x"), std::nullopt);
  EXPECT_EQ(util::parse_double("1.5 "), std::nullopt);
  EXPECT_EQ(util::parse_double("one"), std::nullopt);
}

// ------------------------------------------------------------ manifest ---

/// Rebuilds a CRC-valid manifest line from (possibly corrupted) cells, the
/// way Manifest::serialize would: the corruption the CRC trailer canNOT
/// catch is exactly what Manifest::parse has to survive by itself.
std::string manifest_line(const std::vector<std::string>& cells) {
  std::string payload;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) payload += ',';
    payload += cells[i];
  }
  return payload + ',' + util::crc32c_hex(util::crc32c(payload)) + '\n';
}

TEST(ManifestParse, SurvivesEveryCellMutation) {
  runner::Manifest reference;
  reference.header_crc = 0x12345678;
  reference.fault_seed = 42;
  reference.trial_count = 7;
  reference.trials_crc = 0x9abcdef0;
  reference.incarnations = 3;
  const auto serialized = reference.serialize();
  ASSERT_TRUE(runner::Manifest::parse(serialized).has_value());

  auto cells = util::split_csv_line(serialized.substr(
      0, serialized.find('\n')));
  ASSERT_EQ(cells.size(), 8u);  // 7 payload cells + CRC trailer
  cells.pop_back();  // drop the CRC cell; manifest_line recomputes it

  const std::vector<std::string> mutations = {
      "",                                   // empty cell
      "x",                                  // non-digit
      "12x",                                // trailing garbage
      "99999999999999999999999",            // overflow
      "-1",                                 // sign where none belongs
      "1e9",                                // float where int belongs
      std::string(300, '9'),                // absurd length
  };
  for (std::size_t cell = 0; cell < cells.size(); ++cell) {
    for (const auto& mutation : mutations) {
      auto fuzzed = cells;
      fuzzed[cell] = mutation;
      std::optional<runner::Manifest> parsed;
      EXPECT_NO_THROW(parsed = runner::Manifest::parse(manifest_line(fuzzed)))
          << "cell " << cell << " <- '" << mutation << "'";
      // A digit-cell mutation must read as "not a manifest", never as a
      // half-parsed one.
      EXPECT_FALSE(parsed.has_value())
          << "cell " << cell << " <- '" << mutation << "'";
    }
    // Truncating a cell (and everything after it) must also parse to
    // nullopt, not throw.
    auto truncated = std::vector<std::string>(cells.begin(),
                                              cells.begin() + cell);
    EXPECT_NO_THROW(
        EXPECT_FALSE(runner::Manifest::parse(manifest_line(truncated))));
  }
  EXPECT_NO_THROW(EXPECT_FALSE(runner::Manifest::parse("")));
  EXPECT_NO_THROW(EXPECT_FALSE(runner::Manifest::parse("garbage\n")));
}

// ------------------------------------------------- resume under fuzzing ---

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "parse_hardening_test_" + name;
}

bender::HbmChip fresh_chip() {
  return bender::HbmChip(dram::chip_profiles()[2]);
}

std::vector<runner::CampaignRunner::Trial> make_trials(int n) {
  std::vector<runner::CampaignRunner::Trial> trials;
  for (int t = 0; t < n; ++t) {
    const int row = 64 + 8 * t;
    trials.push_back(
        {"row" + std::to_string(row),
         [row](bender::ChipSession& session) -> std::vector<std::string> {
           const dram::RowAddress victim{{0, 0, 0}, row};
           session.write_row(victim, dram::RowBits::filled(0x5A));
           const auto bits = session.read_row(victim);
           return {std::to_string(bits.count_diff(
               dram::RowBits::filled(0x5A)))};
         }});
  }
  return trials;
}

/// Runs a --resume against (possibly corrupted) artifacts. The contract:
/// the ONLY exception a resume may surface is CheckpointMismatchError.
/// Returns true when the resume completed.
bool resume_survives(const std::string& csv, const std::string& journal,
                     int n_trials) {
  auto chip = fresh_chip();
  runner::RunnerConfig config;
  config.result_columns = {"flips"};
  config.results_path = csv;
  config.journal_path = journal;
  config.resume = true;
  runner::CampaignRunner campaign(chip, config);
  try {
    const auto report = campaign.run(make_trials(n_trials));
    EXPECT_EQ(report.records.size(), static_cast<std::size_t>(n_trials));
    return true;
  } catch (const runner::CheckpointMismatchError&) {
    return false;  // the actionable diagnostic: allowed
  }
  // Anything else (invalid_argument, out_of_range, ...) escapes to the
  // test harness and fails the test — which is the point.
}

struct Artifacts {
  std::string csv;
  std::string journal;
  std::string manifest;
};

Artifacts committed_campaign(const std::string& tag, int n_trials) {
  Artifacts art;
  art.csv = tmp_path(tag + ".csv");
  art.journal = tmp_path(tag + ".jsonl");
  art.manifest = runner::Manifest::path_for(art.csv);
  auto store = util::default_store();
  store->remove(art.csv);
  store->remove(art.journal);
  store->remove(art.manifest);
  auto chip = fresh_chip();
  runner::RunnerConfig config;
  config.result_columns = {"flips"};
  config.results_path = art.csv;
  config.journal_path = art.journal;
  runner::CampaignRunner campaign(chip, config);
  const auto report = campaign.run(make_trials(n_trials));
  EXPECT_FALSE(report.aborted);
  return art;
}

TEST(ResumeHardening, GarbageManifestIsActionableNeverARawThrow) {
  const std::vector<std::string> garbage = {
      "",                            // rolled back to zero bytes
      "hbmrd-manifest",              // truncated mid-header
      "hbmrd-manifest,v1,zz,NOTANUMBER,7,zz,1,deadbeef\n",  // bad digits+crc
      manifest_line({"hbmrd-manifest", "v1", "zzzzzzzz",
                     "99999999999999999999999", "x", "oops", "-3"}),
      std::string(4096, '\xff'),     // binary noise
  };
  auto store = util::default_store();
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    const auto art =
        committed_campaign("manifest_" + std::to_string(i), 4);
    store->atomic_replace(art.manifest, garbage[i]);
    // Must either resume cleanly (manifest treated as missing/foreign) or
    // fail with CheckpointMismatchError; resume_survives asserts that no
    // other exception escapes.
    (void)resume_survives(art.csv, art.journal, 4);
  }
}

TEST(ResumeHardening, CheckpointCellFuzzNeverEscapesRecovery) {
  const auto reference = committed_campaign("cells_ref", 5);
  const auto csv_bytes = slurp(reference.csv);
  ASSERT_FALSE(csv_bytes.empty());

  // Split into lines; line 0 is the header, the rest are records.
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < csv_bytes.size()) {
    const auto end = csv_bytes.find('\n', begin);
    if (end == std::string::npos) break;
    lines.push_back(csv_bytes.substr(begin, end - begin));
    begin = end + 1;
  }
  ASSERT_GE(lines.size(), 4u);

  const std::vector<std::string> mutations = {
      "", "x", "12x", "99999999999999999999999", std::string(200, 'A')};
  auto store = util::default_store();
  const auto record_cells = util::split_csv_line(lines[2]);
  int variant = 0;
  for (std::size_t cell = 0; cell + 1 < record_cells.size(); ++cell) {
    for (const auto& mutation : mutations) {
      // Rebuild record 2 with one fuzzed cell and a RECOMPUTED CRC, so the
      // corruption gets past the CRC check and into the cell parsers.
      auto cells = record_cells;
      cells.pop_back();  // old CRC
      cells[cell] = mutation;
      std::string payload;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) payload += ',';
        payload += cells[i];
      }
      payload += ',' + util::crc32c_hex(util::crc32c(payload));

      const auto art = committed_campaign(
          "cells_" + std::to_string(variant++), 5);
      auto fuzzed_lines = lines;
      fuzzed_lines[2] = payload;
      std::string fuzzed;
      for (const auto& line : fuzzed_lines) fuzzed += line + '\n';
      store->atomic_replace(art.csv, fuzzed);
      (void)resume_survives(art.csv, art.journal, 5);
    }
  }
}

TEST(ResumeHardening, TornAndBitFlippedArtifactsRecover) {
  auto store = util::default_store();
  // Torn checkpoint tail (mid-record truncation).
  {
    const auto art = committed_campaign("torn_csv", 5);
    const auto bytes = slurp(art.csv);
    store->atomic_replace(art.csv, bytes.substr(0, bytes.size() - 7));
    EXPECT_TRUE(resume_survives(art.csv, art.journal, 5));
  }
  // Bit flips sprayed through the journal.
  {
    const auto art = committed_campaign("flipped_journal", 5);
    auto bytes = slurp(art.journal);
    ASSERT_FALSE(bytes.empty());
    for (std::size_t i = 11; i < bytes.size(); i += 97) {
      bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
    }
    store->atomic_replace(art.journal, bytes);
    (void)resume_survives(art.csv, art.journal, 5);
  }
  // Checkpoint replaced by binary noise.
  {
    const auto art = committed_campaign("noise_csv", 5);
    store->atomic_replace(art.csv, std::string(512, '\xee'));
    (void)resume_survives(art.csv, art.journal, 5);
  }
}

}  // namespace
}  // namespace hbmrd
