// Query-engine contract (docs/SERVING.md):
//
//   * byte-identity: a response line is identical whether it comes from
//     the index, the recorded-fallback overlay, or a live simulation
//     (--force-miss), because exporter and fallback share the canonical
//     simulation helpers;
//   * grammar: ranges and `*` expand deterministically, malformed lines
//     produce `error,<line>,...` without aborting the batch;
//   * accounting: every expanded point lands in exactly one of
//     hits / overlay_hits / misses, and bytes_served tracks the payload;
//   * speed: an index hit must be >= 10x faster than simulating the same
//     query (the PR's headline acceptance criterion, asserted with a wide
//     margin since the real ratio is orders of magnitude).
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "bender/platform.h"
#include "serve/export.h"
#include "serve/index.h"
#include "study/address_map.h"

namespace hbmrd::serve {
namespace {

/// One platform + one measured index shared by every test in the suite:
/// export_measured runs real HC searches, so build it once. The fallback
/// session snapshots the rig at construction and canonical() restores it,
/// which keeps every simulation a pure function of (profile, query) no
/// matter how many ran before.
struct EngineFixture : ::testing::Test {
  static constexpr int kRowA = 4300;
  static constexpr int kRowB = 4301;
  static constexpr int kRowOutside = 4310;  // never exported

  static bender::Platform& platform() {
    static bender::Platform instance;
    return instance;
  }

  static FallbackSession& session() {
    static FallbackSession instance(platform().chip(2), map());
    return instance;
  }

  static const study::AddressMap& map() {
    static study::AddressMap instance = study::AddressMap::from_scheme(
        platform().chip(2).profile().mapping);
    return instance;
  }

  static const std::string& image() {
    static const std::string bytes = [] {
      ExportSpec spec;
      spec.chip_index = 2;  // identity mapping
      spec.hc_depth = 2;
      IndexBuilder builder(manifest_for(spec));
      MeasureSpec measure;
      measure.banks = {{0, 0, 0}};
      measure.rows = {kRowA, kRowB};
      measure.patterns = {study::DataPattern::kCheckered0};
      measure.retention = true;
      export_measured(builder, session(), measure);
      return builder.serialize();
    }();
    return bytes;
  }

  static QueryEngine make_engine() {
    return QueryEngine(Index::parse(image(), "mem"));
  }

  std::string run(QueryEngine& engine, const std::string& request,
                  ServeCounters& counters, bool with_fallback = true) {
    std::string response;
    QueryScratch scratch;
    engine.run_batch(request, response, scratch,
                     with_fallback ? &session() : nullptr, counters);
    return response;
  }
};

TEST_F(EngineFixture, HitAndForcedMissAreByteIdentical) {
  const std::string batch =
      "hc_first 0 0 0 4300..4301 Checkered0\n"
      "hc_nth 2 0 0 0 4300 Checkered0\n"
      "ber 1 0 0 0 4300 Checkered0\n"
      "min_retention 0 0 0 4300..4301\n";

  auto from_index = make_engine();
  ServeCounters hit_counters;
  const auto hit = run(from_index, batch, hit_counters);

  auto simulated = make_engine();
  simulated.set_bypass_index(true);
  ServeCounters miss_counters;
  const auto miss = run(simulated, batch, miss_counters);

  EXPECT_EQ(hit, miss) << "index answers differ from live simulation";
  EXPECT_EQ(hit_counters.queries, 6u);
  EXPECT_EQ(hit_counters.hits, 6u);
  EXPECT_EQ(hit_counters.misses, 0u);
  EXPECT_EQ(hit_counters.fallback_simulations, 0u);
  EXPECT_EQ(miss_counters.hits, 0u);
  EXPECT_EQ(miss_counters.fallback_simulations, 6u);
  // Every line is answered, none errored.
  EXPECT_EQ(hit_counters.errors, 0u);
  EXPECT_NE(hit.find("hc_first,0,0,0,4300,Checkered0,0,"), std::string::npos);
  EXPECT_NE(hit.find("min_retention,0,0,0,4301,"), std::string::npos);
}

TEST_F(EngineFixture, FallbackOnMissMatchesIndexSemantics) {
  // kRowOutside is not in the index: the fallback must simulate it and a
  // --force-miss engine must produce the same bytes.
  const std::string batch = "hc_first 0 0 0 4310 Checkered0\n";

  auto engine = make_engine();
  ServeCounters counters;
  const auto answer = run(engine, batch, counters);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.fallback_simulations, 1u);

  auto forced = make_engine();
  forced.set_bypass_index(true);
  ServeCounters forced_counters;
  EXPECT_EQ(run(forced, batch, forced_counters), answer);
}

TEST_F(EngineFixture, BerFromIndexMatchesDirectSimulation) {
  // With hc_depth=2 the index holds rung1/rung2. Any count below rung2 is
  // answerable from the index alone; the answer must equal what a direct
  // simulation measures at that count.
  const auto index = Index::parse(image(), "mem");
  const auto* population = index.find({0, 0, 0, 2, 0});  // Checkered0
  ASSERT_NE(population, nullptr);
  const auto record = index.record(*population, kRowA);
  ASSERT_EQ(record.rung_count(), 2);
  const auto rung1 = record.rung(1);
  const auto rung2 = record.rung(2);
  ASSERT_NE(rung1, kNoFlip);
  ASSERT_NE(rung2, kNoFlip);
  ASSERT_LT(rung1, rung2);

  auto engine = make_engine();
  for (const auto count : {rung1 - 1, rung1, rung2 - 1}) {
    ServeCounters counters;
    const auto line = "ber " + std::to_string(count) +
                      " 0 0 0 4300 Checkered0\n";
    const auto response = run(engine, line, counters, /*with_fallback=*/false);
    EXPECT_EQ(counters.hits, 1u) << line;
    const dram::RowAddress victim{{0, 0, 0}, kRowA};
    const auto flips = simulate_bitflips_at(
        session(), victim, study::DataPattern::kCheckered0, 0, count,
        index.manifest().max_hammer_count);
    EXPECT_EQ(response, "ber," + std::to_string(count) +
                            ",0,0,0,4300,Checkered0,0," +
                            std::to_string(flips) + "\n");
  }

  // count >= rung2: the index cannot bound the flip count -> miss.
  ServeCounters counters;
  const auto refused = run(engine,
                           "ber " + std::to_string(rung2) +
                               " 0 0 0 4300 Checkered0\n",
                           counters, /*with_fallback=*/false);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_NE(refused.find("error,1,"), std::string::npos);
}

TEST_F(EngineFixture, WildcardAndRangeExpansion) {
  auto engine = make_engine();
  engine.set_fallback_enabled(false);
  ServeCounters counters;
  // 1 bank x 2 rows x 4 patterns = 8 points; only Checkered0 is indexed.
  const auto response =
      run(engine, "hc_first 0 0 0..0 4300..4301 *\n", counters);
  EXPECT_EQ(counters.queries, 8u);
  EXPECT_EQ(counters.hits, 2u);
  EXPECT_EQ(counters.misses, 6u);
  std::size_t lines = 0;
  for (const char c : response) lines += (c == '\n');
  EXPECT_EQ(lines, 8u);
  EXPECT_NE(response.find("hc_first,0,0,0,4300,Checkered0,0,"),
            std::string::npos);
  EXPECT_NE(response.find("not in index (fallback disabled)"),
            std::string::npos);
}

TEST_F(EngineFixture, MalformedLinesErrorWithoutAbortingTheBatch) {
  auto engine = make_engine();
  ServeCounters counters;
  const std::string batch =
      "# comment\n"
      "\n"
      "frobnicate 0 0 0 4300 Checkered0\n"
      "hc_nth 0 0 0 0 4300 Checkered0\n"
      "hc_first 9 0 0 4300 Checkered0\n"
      "hc_first 0 0 0 4300 Plaid\n"
      "hc_first 0 0 0 4300 Checkered0 extra\n"
      "hc_first 0 0 0 4300..100 Checkered0\n"
      "hc_first 0 0 0 4300 Checkered0\n";
  const auto response = run(engine, batch, counters);
  EXPECT_EQ(counters.errors, 6u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_NE(response.find("error,3,unknown verb"), std::string::npos);
  EXPECT_NE(response.find("error,4,bad k"), std::string::npos);
  EXPECT_NE(response.find("error,5,bad channel"), std::string::npos);
  EXPECT_NE(response.find("error,6,bad pattern"), std::string::npos);
  EXPECT_NE(response.find("error,7,trailing arguments"), std::string::npos);
  EXPECT_NE(response.find("error,8,bad row"), std::string::npos);
  // The good final line still answered.
  EXPECT_NE(response.find("hc_first,0,0,0,4300,Checkered0,0,"),
            std::string::npos);
}

TEST_F(EngineFixture, OverlayRecordsFallbackAnswersForReuse) {
  auto engine = make_engine();
  const std::string batch = "hc_first 0 0 0 4310 Checkered0\n";

  ServeCounters first;
  const auto a = run(engine, batch, first);
  EXPECT_EQ(first.misses, 1u);
  EXPECT_EQ(first.fallback_simulations, 1u);
  EXPECT_EQ(first.overlay_hits, 0u);

  // The identical miss again: served from the overlay, simulation-free,
  // byte-identical — even with no fallback session at all.
  ServeCounters second;
  const auto b = run(engine, batch, second, /*with_fallback=*/false);
  EXPECT_EQ(b, a);
  EXPECT_EQ(second.overlay_hits, 1u);
  EXPECT_EQ(second.fallback_simulations, 0u);
  EXPECT_EQ(second.errors, 0u);
}

TEST_F(EngineFixture, NoFallbackRefusesMissesWithAnActionableError) {
  auto engine = make_engine();
  engine.set_fallback_enabled(false);
  ServeCounters counters;
  const auto response =
      run(engine, "hc_first 0 0 0 4310 Checkered0\n", counters);
  EXPECT_EQ(response.rfind("error,1,", 0), 0u);
  EXPECT_NE(response.find("not in index (fallback disabled)"),
            std::string::npos);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.fallback_simulations, 0u);
}

TEST_F(EngineFixture, CountersAccountForBatchesAndBytes) {
  auto engine = make_engine();
  ServeCounters counters;
  const auto a = run(engine, "hc_first 0 0 0 4300 Checkered0\n", counters);
  const auto b = run(engine, "min_retention 0 0 0 4300\n", counters);
  EXPECT_EQ(counters.batches, 2u);
  EXPECT_EQ(counters.queries, 2u);
  EXPECT_EQ(counters.bytes_served, a.size() + b.size());
}

TEST_F(EngineFixture, IndexHitIsAtLeastTenTimesFasterThanSimulation) {
  // The acceptance criterion: answering from the index must be >= 10x
  // faster than simulating the same hc_first point query. The real gap is
  // ~1e4x (sub-microsecond lookup vs a full HC binary search), so this
  // cannot flake on a loaded machine.
  using Clock = std::chrono::steady_clock;
  const std::string point = "hc_first 0 0 0 4300 Checkered0\n";
  constexpr int kHitQueries = 256;
  std::string hit_batch;
  for (int i = 0; i < kHitQueries; ++i) hit_batch += point;

  auto hit_engine = make_engine();
  ServeCounters hit_counters;
  std::string response;
  QueryScratch scratch;
  // Warm up (first batch touches cold caches), then measure.
  hit_engine.run_batch(point, response, scratch, nullptr, hit_counters);
  response.clear();
  const auto hit_t0 = Clock::now();
  hit_engine.run_batch(hit_batch, response, scratch, nullptr, hit_counters);
  const auto hit_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - hit_t0)
                          .count();
  ASSERT_EQ(hit_counters.hits, 1u + kHitQueries);
  const double hit_per_query =
      static_cast<double>(hit_ns) / kHitQueries;

  auto miss_engine = make_engine();
  miss_engine.set_bypass_index(true);
  ServeCounters miss_counters;
  std::string miss_response;
  const auto miss_t0 = Clock::now();
  miss_engine.run_batch(point, miss_response, scratch, &session(),
                        miss_counters);
  const auto miss_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - miss_t0)
                           .count();
  ASSERT_EQ(miss_counters.fallback_simulations, 1u);

  EXPECT_GE(static_cast<double>(miss_ns), 10.0 * hit_per_query)
      << "hit " << hit_per_query << " ns/query vs simulate " << miss_ns
      << " ns";
}

}  // namespace
}  // namespace hbmrd::serve
