// Bitplane device-model parity (dram/bank.cpp word-parallel sense path).
//
// Contract: the bitplane scan, the candidate-prefix scan, and the per-cell
// scalar reference produce byte-identical RowBits, flip positions, and
// campaign artifacts for every device state. These tests pin that down at
// three levels: the plane-fill primitives against the per-cell fault-model
// hashes, the cached summary's planes against its per-cell flags, and a
// seeded differential fuzz driving scalar and bitplane banks through the
// same randomized command sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bender/platform.h"
#include "disturb/fault_model.h"
#include "disturb/threshold_cache.h"
#include "dram/bank.h"
#include "dram/chip_profiles.h"
#include "dram/geometry.h"
#include "dram/row_data.h"
#include "dram/timing.h"
#include "runner/runner.h"
#include "util/rng.h"

namespace hbmrd::dram {
namespace {

constexpr BankAddress kAddr{0, 0, 0};

disturb::DisturbParams test_params() {
  disturb::DisturbParams p;
  p.seed = 0xB17B1A7Eull;
  return p;
}

// ---------------------------------------------------------------------------
// Plane-fill primitives vs the per-cell fault-model hashes.

TEST(BitplanePrimitives, MembershipPlanesMatchPerCellPredicates) {
  const disturb::FaultModel model(test_params());
  const auto& params = model.params();
  for (int row : {0, 17, 4300, kRowsPerBank - 1}) {
    const auto ctx = model.row_context(kAddr, row);
    const auto prefixes = model.row_hash_prefixes(kAddr, row);
    std::array<std::uint64_t, RowBits::kWords> outlier{};
    std::array<std::uint64_t, RowBits::kWords> weak{};
    std::array<std::uint64_t, RowBits::kWords> leaky{};
    std::array<std::uint64_t, RowBits::kWords> true_cells{};
    disturb::FaultModel::fill_membership_plane(
        prefixes.outlier, params.outlier_fraction, outlier);
    disturb::FaultModel::fill_membership_plane(prefixes.weak,
                                               ctx.weak_density, weak);
    disturb::FaultModel::fill_membership_plane(
        prefixes.leaky, params.leaky_cell_fraction, leaky);
    disturb::FaultModel::fill_membership_plane(
        prefixes.orientation, params.true_cell_fraction, true_cells);
    for (int bit = 0; bit < kRowBits; ++bit) {
      const auto w = static_cast<std::size_t>(bit >> 6);
      const int b = bit & 63;
      ASSERT_EQ((outlier[w] >> b) & 1u,
                model.is_outlier_cell(kAddr, row, bit) ? 1u : 0u)
          << "row " << row << " bit " << bit;
      ASSERT_EQ((weak[w] >> b) & 1u,
                model.is_weak_cell(kAddr, row, bit, ctx.weak_density) ? 1u
                                                                      : 0u)
          << "row " << row << " bit " << bit;
      ASSERT_EQ((leaky[w] >> b) & 1u,
                model.is_leaky_cell(kAddr, row, bit) ? 1u : 0u)
          << "row " << row << " bit " << bit;
      // A cell storing `true` is charged iff it is a true cell.
      ASSERT_EQ((true_cells[w] >> b) & 1u,
                model.is_charged(kAddr, row, bit, true) ? 1u : 0u)
          << "row " << row << " bit " << bit;
    }
  }
}

TEST(BitplanePrimitives, UniformRowsMatchPerCellHashes) {
  const disturb::FaultModel model(test_params());
  const auto& params = model.params();
  for (int row : {3, 4300}) {
    const auto prefixes = model.row_hash_prefixes(kAddr, row);
    std::array<std::uint64_t, RowBits::kWords> leaky{};
    disturb::FaultModel::fill_membership_plane(
        prefixes.leaky, params.leaky_cell_fraction, leaky);
    std::vector<double> cell_u(kRowBits);
    std::vector<double> retention_u(kRowBits);
    disturb::FaultModel::fill_uniform_row(prefixes.cell_threshold, cell_u);
    disturb::FaultModel::fill_retention_uniform_row(
        prefixes.leaky_retention, prefixes.normal_retention, leaky,
        retention_u);
    for (int bit = 0; bit < kRowBits; ++bit) {
      const auto i = static_cast<std::size_t>(bit);
      ASSERT_EQ(cell_u[i], model.cell_threshold_uniform(kAddr, row, bit))
          << "row " << row << " bit " << bit;
      ASSERT_EQ(cell_u[i],
                disturb::FaultModel::uniform_at(prefixes.cell_threshold, bit))
          << "row " << row << " bit " << bit;
      const bool is_leaky = model.is_leaky_cell(kAddr, row, bit);
      ASSERT_EQ(retention_u[i],
                model.retention_uniform(kAddr, row, bit, is_leaky))
          << "row " << row << " bit " << bit;
    }
  }
}

TEST(BitplanePrimitives, MembershipThresholdMatchesUnitCompare) {
  const disturb::FaultModel model(test_params());
  const auto prefixes = model.row_hash_prefixes(kAddr, 99);
  for (double fraction : {0.0, 1e-9, 0.02, 0.35, 0.999, 1.0, 2.0}) {
    const std::uint64_t threshold =
        disturb::FaultModel::membership_threshold(fraction);
    for (int bit = 0; bit < 256; ++bit) {
      const bool via_unit =
          disturb::FaultModel::uniform_at(prefixes.outlier, bit) < fraction;
      ASSERT_EQ(
          disturb::FaultModel::below_threshold(prefixes.outlier, bit,
                                               threshold),
          via_unit)
          << "fraction " << fraction << " bit " << bit;
    }
  }
}

// ---------------------------------------------------------------------------
// Cached summary: planes agree with the per-cell flags and power-on words.

TEST(BitplaneSummary, PlanesMatchFlagsAndPowerOn) {
  const disturb::FaultModel model(test_params());
  const auto s = disturb::build_row_summary(model, kAddr, 4300);
  using Summary = disturb::RowThresholdSummary;
  for (int bit = 0; bit < kRowBits; ++bit) {
    const auto w = static_cast<std::size_t>(bit >> 6);
    const int b = bit & 63;
    const std::uint8_t flags = s.flags[static_cast<std::size_t>(bit)];
    EXPECT_EQ((s.true_plane[w] >> b) & 1u,
              (flags & Summary::kTrueCell) ? 1u : 0u);
    EXPECT_EQ((s.leaky_plane[w] >> b) & 1u,
              (flags & Summary::kLeaky) ? 1u : 0u);
    EXPECT_EQ((s.outlier_plane[w] >> b) & 1u,
              (flags & Summary::kOutlier) ? 1u : 0u);
    EXPECT_EQ((s.weak_plane[w] >> b) & 1u,
              (flags & Summary::kWeak) ? 1u : 0u);
  }
  for (int w = 0; w < RowBits::kWords; ++w) {
    EXPECT_EQ(s.power_on[static_cast<std::size_t>(w)],
              model.power_on_word(kAddr, 4300, w))
        << "word " << w;
  }
}

// ---------------------------------------------------------------------------
// Bank-level differential fuzz: scalar vs bitplane, cached vs uncached.

/// Four banks sharing one fault model and environment, driven through
/// identical command sequences: {scalar, bitplane} x {cache, no cache}.
struct BankQuartet {
  disturb::FaultModel fault{test_params()};
  Environment env{60.0};
  TimingParams timing{};
  disturb::BankThresholdCache cache_scalar{kAddr, 16};
  disturb::BankThresholdCache cache_bitplane{kAddr, 16};
  std::array<Bank, 4> banks{
      Bank{kAddr, &fault, &env, timing, nullptr, /*scalar_sense=*/true},
      Bank{kAddr, &fault, &env, timing, nullptr, /*scalar_sense=*/false},
      Bank{kAddr, &fault, &env, timing, &cache_scalar, /*scalar_sense=*/true},
      Bank{kAddr, &fault, &env, timing, &cache_bitplane,
           /*scalar_sense=*/false}};
  Cycle now = 1000;

  void write_row(int row, const RowBits& bits) {
    for (auto& bank : banks) {
      bank.activate(row, now);
      std::array<std::uint64_t, kWordsPerColumn> column;
      for (int c = 0; c < kColumns; ++c) {
        bits.get_column(c, column);
        bank.write_column(c, column, now + timing.t_rcd + 1);
      }
      bank.precharge(now + timing.t_ras + 100);
    }
    now += timing.t_ras + 100 + timing.t_rp + 100;
  }

  /// Reads all four banks and asserts the contents are byte-identical;
  /// returns the (common) row bits.
  RowBits read_row_checked(int row) {
    std::array<RowBits, 4> all;
    for (std::size_t k = 0; k < banks.size(); ++k) {
      banks[k].activate(row, now);
      std::array<std::uint64_t, kWordsPerColumn> column;
      for (int c = 0; c < kColumns; ++c) {
        banks[k].read_column(c, column, now + timing.t_rcd + 1);
        all[k].set_column(c, column);
      }
      banks[k].precharge(now + timing.t_ras + 100);
    }
    now += timing.t_ras + 100 + timing.t_rp + 100;
    for (std::size_t k = 1; k < banks.size(); ++k) {
      EXPECT_EQ(all[0].words()[0], all[k].words()[0]) << "bank " << k;
      EXPECT_TRUE(all[0] == all[k])
          << "row " << row << " differs between variant 0 and " << k;
    }
    return all[0];
  }

  void hammer(std::span<const HammerStep> steps, std::uint64_t count) {
    Cycle end = 0;
    for (auto& bank : banks) end = bank.bulk_hammer(steps, count, now);
    now = end + 100;
  }

  void idle_seconds(double s) { now += seconds_to_cycles(s); }
};

TEST(BitplaneDifferential, RandomizedSensesAreByteIdentical) {
  util::Stream rng(0xD1FFull);
  BankQuartet q;
  const std::array<std::uint8_t, 6> patterns = {0x00, 0xFF, 0x55,
                                                0xAA, 0x33, 0x6D};
  for (int trial = 0; trial < 24; ++trial) {
    // Mid-subarray victims, spread across two subarrays.
    const int victim =
        4100 + static_cast<int>(rng.next_u64() % 400) / 8 * 8 + 4;
    const auto victim_pattern =
        patterns[rng.next_u64() % patterns.size()];
    q.env.temperature_c = 40.0 + 55.0 * rng.next_unit();
    q.write_row(victim, RowBits::filled(victim_pattern));
    q.write_row(victim - 1,
                RowBits::filled(patterns[rng.next_u64() % patterns.size()]));
    q.write_row(victim + 1,
                RowBits::filled(patterns[rng.next_u64() % patterns.size()]));
    if (trial % 3 == 0) {
      q.write_row(victim - 2,
                  RowBits::filled(patterns[rng.next_u64() % patterns.size()]));
      q.write_row(victim + 2,
                  RowBits::filled(patterns[rng.next_u64() % patterns.size()]));
    }

    std::vector<HammerStep> steps = {{victim - 1, q.timing.t_ras},
                                     {victim + 1, q.timing.t_ras}};
    if (trial % 4 == 1) {
      // RowPress-style long on-times.
      steps[0].on_cycles = q.timing.t_ras * 32;
      steps[1].on_cycles = q.timing.t_ras * 32;
    }
    if (trial % 5 == 2) {
      steps.push_back({victim - 2, q.timing.t_ras});
      steps.push_back({victim + 2, q.timing.t_ras});
    }
    const std::uint64_t count = 2000 + rng.next_u64() % 200000;
    q.hammer(steps, count);

    if (trial % 6 == 3) {
      // Park the row long enough that retention decay joins the sense.
      q.idle_seconds(0.02 + 30.0 * rng.next_unit());
    }
    (void)q.read_row_checked(victim);
    if (trial % 3 == 0) {
      (void)q.read_row_checked(victim - 2);
      (void)q.read_row_checked(victim + 2);
    }
  }
  // The reference banks walked cells one by one; the bitplane banks did
  // word-parallel work. Both facts must show up in the counters.
  EXPECT_GT(q.banks[0].counters().sense_cells_visited, 0u);
  EXPECT_GT(q.banks[1].counters().sense_word_ops, 0u);
  EXPECT_EQ(q.banks[0].counters().bitflips_materialized,
            q.banks[1].counters().bitflips_materialized);
  EXPECT_EQ(q.banks[0].counters().bitflips_materialized,
            q.banks[2].counters().bitflips_materialized);
  EXPECT_EQ(q.banks[0].counters().bitflips_materialized,
            q.banks[3].counters().bitflips_materialized);
}

TEST(BitplaneDifferential, CheckpointRestoreKeepsVariantsInLockstep) {
  util::Stream rng(0xC4EC4ull);
  BankQuartet q;
  const int victim = 4300;
  q.write_row(victim, RowBits::filled(0x55));
  q.write_row(victim - 1, RowBits::filled(0xAA));
  q.write_row(victim + 1, RowBits::filled(0xAA));
  for (auto& bank : q.banks) ASSERT_EQ(bank.push_checkpoint(), 0u);
  const std::array<HammerStep, 2> steps = {
      HammerStep{victim - 1, q.timing.t_ras},
      HammerStep{victim + 1, q.timing.t_ras}};
  for (int round = 0; round < 6; ++round) {
    const std::uint64_t count = 20000 + rng.next_u64() % 150000;
    q.hammer(steps, count);
    (void)q.read_row_checked(victim);
    for (auto& bank : q.banks) bank.restore_checkpoint(0);
    // Restored state must also sense identically.
    q.write_row(victim - 1, RowBits::filled(0xAA));
    q.write_row(victim + 1, RowBits::filled(0xAA));
  }
  for (auto& bank : q.banks) bank.discard_checkpoints();
}

TEST(BitplaneDifferential, DoseMemoRingEvictsInsteadOfThrashing) {
  // Four aggressor epochs with random (non-periodic) data give 18 distinct
  // dose values per sense — 3 same-bit counts at distance 1, times 3 at
  // distance 2, times the intra bit; the 16-slot memo must rotate through
  // them (the old scheme overwrote the last slot forever).
  util::Stream rng(0xEB1C7ull);
  auto random_row = [&rng] {
    RowBits bits;
    for (auto& word : bits.words()) word = rng.next_u64();
    return bits;
  };
  BankQuartet q;
  const int victim = 4300;
  q.write_row(victim, random_row());
  q.write_row(victim - 1, random_row());
  q.write_row(victim + 1, random_row());
  q.write_row(victim - 2, random_row());
  q.write_row(victim + 2, random_row());
  const std::array<HammerStep, 4> steps = {
      HammerStep{victim - 1, q.timing.t_ras},
      HammerStep{victim + 1, q.timing.t_ras},
      HammerStep{victim - 2, q.timing.t_ras},
      HammerStep{victim + 2, q.timing.t_ras}};
  q.hammer(steps, 150000);
  (void)q.read_row_checked(victim);
  EXPECT_GT(q.banks[0].counters().dose_memo_evictions, 0u)
      << "scalar reference should cycle through > 16 dose classes";
}

// ---------------------------------------------------------------------------
// Campaign artifacts: CSV + journal byte-identity with the toggle flipped.

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "device_bitplane_test_" + name;
}

std::vector<runner::CampaignRunner::Trial> campaign_trials(int n) {
  std::vector<runner::CampaignRunner::Trial> trials;
  for (int t = 0; t < n; ++t) {
    const int row = 96 + 8 * t;
    const auto pattern = static_cast<std::uint8_t>(0x50 + t);
    trials.push_back(
        {"row" + std::to_string(row),
         [row, pattern](bender::ChipSession& session)
             -> std::vector<std::string> {
           const RowAddress victim{{0, 0, 0}, row};
           session.write_row(victim, RowBits::filled(pattern));
           session.write_row({{0, 0, 0}, row - 1}, RowBits::filled(0xFF));
           session.write_row({{0, 0, 0}, row + 1}, RowBits::filled(0xFF));
           const std::array<int, 2> aggressors = {row - 1, row + 1};
           session.hammer({0, 0, 0}, aggressors, 60000);
           const auto bits = session.read_row(victim);
           return {std::to_string(
               bits.count_diff(RowBits::filled(pattern)))};
         }});
  }
  return trials;
}

struct CampaignArtifacts {
  std::string csv;
  std::string journal;
};

CampaignArtifacts run_campaign(bool scalar_sense, int jobs,
                               const std::string& tag) {
  auto profile = chip_profiles()[2];
  profile.scalar_sense = scalar_sense;
  bender::HbmChip chip(profile);
  runner::RunnerConfig config;
  config.result_columns = {"flips"};
  config.results_path = tmp_path(tag + ".csv");
  config.journal_path = tmp_path(tag + ".jsonl");
  config.jobs = jobs;
  runner::CampaignRunner campaign(chip, config);
  (void)campaign.run(campaign_trials(6));
  return {slurp(config.results_path), slurp(config.journal_path)};
}

TEST(BitplaneCampaign, ArtifactsAreByteIdenticalAcrossModeAndJobs) {
  const auto bitplane = run_campaign(false, 1, "bp_j1");
  ASSERT_FALSE(bitplane.csv.empty());
  const auto scalar = run_campaign(true, 1, "sc_j1");
  EXPECT_EQ(bitplane.csv, scalar.csv);
  EXPECT_EQ(bitplane.journal, scalar.journal);
  const auto scalar_j4 = run_campaign(true, 4, "sc_j4");
  EXPECT_EQ(bitplane.csv, scalar_j4.csv);
  EXPECT_EQ(bitplane.journal, scalar_j4.journal);
  const auto bitplane_j4 = run_campaign(false, 4, "bp_j4");
  EXPECT_EQ(bitplane.csv, bitplane_j4.csv);
  EXPECT_EQ(bitplane.journal, bitplane_j4.journal);
}

}  // namespace
}  // namespace hbmrd::dram
