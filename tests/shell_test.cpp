#include "shell/shell.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hbmrd::shell {
namespace {

std::string run_command(Shell& shell, const std::string& command,
                        bool expect_ok = true) {
  std::ostringstream out;
  EXPECT_EQ(shell.execute(command, out), expect_ok) << command << ": "
                                                    << out.str();
  return out.str();
}

TEST(Shell, HelpAndChipSelection) {
  Shell shell;
  EXPECT_NE(run_command(shell, "help").find("hcfirst"), std::string::npos);
  EXPECT_NE(run_command(shell, "chips").find("Chip 5"), std::string::npos);
  EXPECT_NE(run_command(shell, "chip 3").find("Chip 3"), std::string::npos);
  run_command(shell, "chip 99", /*expect_ok=*/false);
}

TEST(Shell, WriteReadRoundTrip) {
  Shell shell;
  run_command(shell, "write 0 0 0 123 0x5A");
  const auto output = run_command(shell, "read 0 0 0 123 0x5A");
  EXPECT_NE(output.find("0 bitflips"), std::string::npos);
}

TEST(Shell, HammerInducesFlipsVisibleToRead) {
  Shell shell;
  run_command(shell, "chip 2");  // identity mapping
  run_command(shell, "map trust");
  run_command(shell, "write 0 0 0 4300 0x55");
  run_command(shell, "write 0 0 0 4299 0xAA");
  run_command(shell, "write 0 0 0 4301 0xAA");
  run_command(shell, "hammer 0 0 0 2000000 4299 4301");
  const auto output = run_command(shell, "read 0 0 0 4300 0x55");
  EXPECT_EQ(output.find("0 bitflips"), std::string::npos);
}

TEST(Shell, BerAndHcFirst) {
  Shell shell;
  run_command(shell, "chip 2");
  run_command(shell, "map trust");
  const auto ber = run_command(shell, "ber 0 0 0 4500");
  EXPECT_NE(ber.find("BER"), std::string::npos);
  const auto hc = run_command(shell, "hcfirst 0 0 0 4500");
  EXPECT_NE(hc.find("HC_first = "), std::string::npos);
}

TEST(Shell, CommentsBlanksAndErrors) {
  Shell shell;
  run_command(shell, "");
  run_command(shell, "# just a comment");
  run_command(shell, "nonsense", /*expect_ok=*/false);
  run_command(shell, "write 0 0 0", /*expect_ok=*/false);  // too few args
  run_command(shell, "write 0 0 0 12junk 0", /*expect_ok=*/false);
}

TEST(Shell, MalformedOperandsAreUsageErrorsNotCrashes) {
  Shell shell;
  // Out-of-int-range literal: stoi used to throw a raw out_of_range here.
  const auto huge = run_command(shell, "chip 99999999999999999999",
                                /*expect_ok=*/false);
  EXPECT_NE(huge.find("error: bad int"), std::string::npos) << huge;
  run_command(shell, "write 0 0 0 123 999999999999999999999",
              /*expect_ok=*/false);
  // Malformed floating-point operands.
  const auto bad_idle = run_command(shell, "idle forever",
                                    /*expect_ok=*/false);
  EXPECT_NE(bad_idle.find("error: bad number"), std::string::npos)
      << bad_idle;
  run_command(shell, "refresh 1.5x 0", /*expect_ok=*/false);
  run_command(shell, "hammer 0 0 0 100 64 on=soon", /*expect_ok=*/false);
  // Hex operands keep working (base-0 parsing).
  EXPECT_NE(run_command(shell, "write 0 0 0 123 0x5A").find("ok"),
            std::string::npos);
  // The shell is still usable after every error above.
  EXPECT_NE(run_command(shell, "read 0 0 0 123 0x5A").find("0 bitflips"),
            std::string::npos);
}

TEST(Shell, RunLoopStopsAtQuit) {
  Shell shell;
  std::istringstream in("chips\nquit\nnever-reached\n");
  std::ostringstream out;
  EXPECT_EQ(shell.run(in, out), 0);
  EXPECT_EQ(out.str().find("never-reached"), std::string::npos);
}

TEST(Shell, SeedAndTemp) {
  Shell shell(1234);
  EXPECT_NE(run_command(shell, "seed").find("0x4d2"), std::string::npos);
  EXPECT_NE(run_command(shell, "temp").find("C"), std::string::npos);
}

}  // namespace
}  // namespace hbmrd::shell
