#include "dram/stack.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>

namespace hbmrd::dram {
namespace {

StackConfig test_config(MappingScheme scheme = MappingScheme::kIdentity) {
  StackConfig config;
  config.disturb.seed = 0x57ACull;
  config.mapping = scheme;
  return config;
}

struct StackFixture {
  explicit StackFixture(StackConfig config = test_config())
      : stack(std::move(config)) {}

  Stack stack;
  TimingParams timing{};
  Cycle now = 1000;

  void write_row(const RowAddress& addr, const RowBits& bits) {
    stack.activate(addr, now);
    std::array<std::uint64_t, kWordsPerColumn> column;
    for (int c = 0; c < kColumns; ++c) {
      bits.get_column(c, column);
      stack.write_column(addr.bank, c, column, now + timing.t_rcd + 1);
    }
    now += timing.t_ras + 100;
    stack.precharge(addr.bank, now);
    now += timing.t_rp + 100;
  }

  RowBits read_row(const RowAddress& addr) {
    stack.activate(addr, now);
    RowBits bits;
    std::array<std::uint64_t, kWordsPerColumn> column;
    for (int c = 0; c < kColumns; ++c) {
      stack.read_column(addr.bank, c, column, now + timing.t_rcd + 1);
      bits.set_column(c, column);
    }
    now += timing.t_ras + 100;
    stack.precharge(addr.bank, now);
    now += timing.t_rp + 100;
    return bits;
  }
};

TEST(Stack, BanksAreIndependent) {
  StackFixture f;
  const RowAddress a{{0, 0, 0}, 50};
  const RowAddress b{{3, 1, 7}, 50};
  f.write_row(a, RowBits::filled(0x11));
  f.write_row(b, RowBits::filled(0x22));
  EXPECT_EQ(f.read_row(a), RowBits::filled(0x11));
  EXPECT_EQ(f.read_row(b), RowBits::filled(0x22));
}

TEST(Stack, MappingTranslatesActivations) {
  StackFixture f(test_config(MappingScheme::kPairSwap));
  const BankAddress bank{0, 0, 0};
  // Logical 1 is physical 2 under pair-swap.
  f.write_row({bank, 1}, RowBits::filled(0x77));
  EXPECT_EQ(f.stack.mapping().to_physical(1), 2);
  // The bank's open-row bookkeeping is physical: hammering logical rows 0
  // and 2 (physical 0 and 1) must disturb... verified at study level; here
  // we check that reading logical 1 returns what was written (round trip
  // through the translation).
  EXPECT_EQ(f.read_row({bank, 1}), RowBits::filled(0x77));
}

TEST(Stack, BulkHammerTranslatesLogicalRows) {
  // Under pair-swap, victim logical 4301 <-> physical neighbors of its
  // physical row; use the identity part (offset 3 in block of 4: 4303).
  StackFixture f(test_config(MappingScheme::kPairSwap));
  const BankAddress bank{0, 0, 0};
  const int victim_physical = 4302;  // logical 4301
  const int victim_logical = f.stack.mapping().to_logical(victim_physical);
  const int aggr_low = f.stack.mapping().to_logical(victim_physical - 1);
  const int aggr_high = f.stack.mapping().to_logical(victim_physical + 1);

  f.write_row({bank, victim_logical}, RowBits::filled(0x55));
  f.write_row({bank, aggr_low}, RowBits::filled(0xAA));
  f.write_row({bank, aggr_high}, RowBits::filled(0xAA));
  const std::array<HammerStep, 2> steps = {
      HammerStep{aggr_low, f.timing.t_ras},
      HammerStep{aggr_high, f.timing.t_ras}};
  f.now = f.stack.bulk_hammer(bank, steps, 2'000'000, f.now) + 100;
  EXPECT_GT(f.read_row({bank, victim_logical})
                .count_diff(RowBits::filled(0x55)),
            0);
}

TEST(Stack, ModeRegistersRoundTrip) {
  StackFixture f;
  f.stack.mode_register_set(4, 0x1);
  EXPECT_EQ(f.stack.mode_register_read(4), 0x1u);
  EXPECT_TRUE(f.stack.mode_registers().ecc_enabled());
  EXPECT_THROW(f.stack.mode_register_set(99, 0), std::out_of_range);
}

TEST(Stack, EccCorrectsSingleFlipAndCountsIt) {
  StackFixture f;
  f.stack.mode_registers().set_ecc_enabled(true);
  const BankAddress bank{0, 0, 0};
  const RowAddress addr{bank, 4300};
  f.write_row(addr, RowBits::filled(0x55));

  // Inject a single-bit error directly into the stored row (simulator
  // backdoor: flip via a tiny hammer is imprecise, so poke the bank).
  // A 1-bit error in word 0 must be corrected transparently.
  f.stack.bank(bank).activate(4300, f.now);
  std::array<std::uint64_t, kWordsPerColumn> column;
  f.stack.bank(bank).read_column(0, column, f.now + f.timing.t_rcd + 1);
  column[0] ^= 1ull;  // corrupt one bit
  f.stack.bank(bank).write_column(0, column, f.now + f.timing.t_rcd + 2);
  f.now += f.timing.t_ras + 100;
  f.stack.bank(bank).precharge(f.now);
  f.now += 100;

  EXPECT_EQ(f.read_row(addr), RowBits::filled(0x55));
  EXPECT_EQ(f.stack.ecc_counters().corrected_words, 1u);
  EXPECT_EQ(f.stack.ecc_counters().detected_uncorrectable_words, 0u);
}

TEST(Stack, EccDetectsDoubleFlip) {
  StackFixture f;
  f.stack.mode_registers().set_ecc_enabled(true);
  const BankAddress bank{0, 0, 0};
  const RowAddress addr{bank, 4300};
  f.write_row(addr, RowBits::filled(0x55));

  f.stack.bank(bank).activate(4300, f.now);
  std::array<std::uint64_t, kWordsPerColumn> column;
  f.stack.bank(bank).read_column(0, column, f.now + f.timing.t_rcd + 1);
  column[0] ^= 0b101ull;  // two bitflips in one word
  f.stack.bank(bank).write_column(0, column, f.now + f.timing.t_rcd + 2);
  f.now += f.timing.t_ras + 100;
  f.stack.bank(bank).precharge(f.now);
  f.now += 100;

  (void)f.read_row(addr);
  EXPECT_EQ(f.stack.ecc_counters().detected_uncorrectable_words, 1u);
}

TEST(Stack, EccDisabledPassesRawBitsThrough) {
  StackFixture f;
  const BankAddress bank{0, 0, 0};
  const RowAddress addr{bank, 100};
  f.write_row(addr, RowBits::filled(0x00));
  EXPECT_EQ(f.stack.ecc_counters().corrected_words, 0u);
  EXPECT_EQ(f.read_row(addr), RowBits::filled(0x00));
}

TEST(Stack, DocumentedTrrModeRefreshesTargetNeighbors) {
  // Arm TRR Mode on a victim whose neighbours accumulated dose; a REF must
  // reset that dose (JESD235 TRR Mode, Sec. 7 footnote 2).
  StackFixture f;
  const BankAddress bank{0, 0, 0};
  const int target = 4301;
  f.write_row({bank, target - 1}, RowBits::filled(0x55));
  f.write_row({bank, target + 1}, RowBits::filled(0x55));
  // Hammer the target so both neighbours carry dose.
  const std::array<HammerStep, 1> steps = {HammerStep{target, f.timing.t_ras}};
  f.now = f.stack.bulk_hammer(bank, steps, 1000, f.now) + 100;
  ASSERT_GT(f.stack.bank(bank).ledger(target - 1)->adjacent_dose(), 0.0);

  f.stack.mode_registers().set_trr_mode_enabled(true);
  f.stack.mode_registers().set_trr_target(0, 0, target);
  f.stack.refresh(0, f.now);
  f.now += f.timing.t_rfc + 100;
  EXPECT_EQ(f.stack.bank(bank).ledger(target - 1)->adjacent_dose(), 0.0);
  EXPECT_EQ(f.stack.bank(bank).ledger(target + 1)->adjacent_dose(), 0.0);
}

TEST(Stack, RefreshRequiresValidChannel) {
  StackFixture f;
  EXPECT_THROW(f.stack.refresh(-1, f.now), std::out_of_range);
  EXPECT_THROW(f.stack.refresh(8, f.now), std::out_of_range);
}

TEST(Stack, DropRowStatesClearsParityToo) {
  StackFixture f;
  f.stack.mode_registers().set_ecc_enabled(true);
  const BankAddress bank{1, 0, 2};
  f.write_row({bank, 10}, RowBits::filled(0x42));
  f.stack.drop_row_states(bank);
  EXPECT_EQ(f.stack.bank(bank).touched_rows(), 0u);
  // Reading power-on garbage must not decode stale parity: with the parity
  // dropped the raw contents come back unmodified and uncounted.
  const auto before = f.stack.ecc_counters().detected_uncorrectable_words;
  (void)f.read_row({bank, 10});
  EXPECT_EQ(f.stack.ecc_counters().detected_uncorrectable_words, before);
}

}  // namespace
}  // namespace hbmrd::dram
