#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hbmrd::util {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Moments, MeanVarianceStddev) {
  EXPECT_DOUBLE_EQ(mean(kSample), 5.0);
  EXPECT_DOUBLE_EQ(variance(kSample), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(stddev(kSample), 2.0);
}

TEST(Moments, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation(kSample), 0.4);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(zeros), 0.0);
}

TEST(Moments, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), std::invalid_argument);
  EXPECT_THROW((void)variance(empty), std::invalid_argument);
  EXPECT_THROW((void)percentile(empty, 50), std::invalid_argument);
  EXPECT_THROW((void)min_of(empty), std::invalid_argument);
  EXPECT_THROW((void)max_of(empty), std::invalid_argument);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_THROW((void)percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101), std::invalid_argument);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 9.0);
}

TEST(Pearson, PerfectAndInverseCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> inv = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, inv), -1.0, 1e-12);
}

TEST(Pearson, UncorrelatedAndDegenerate) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
  const std::vector<double> short_ys = {1, 2};
  EXPECT_THROW((void)pearson(xs, short_ys), std::invalid_argument);
}

TEST(Polyfit, RecoversExactPolynomial) {
  // y = 3 - 2x + 0.5x^2
  std::vector<double> xs, ys;
  for (int i = 0; i < 12; ++i) {
    const double x = i * 0.7 - 3.0;
    xs.push_back(x);
    ys.push_back(3.0 - 2.0 * x + 0.5 * x * x);
  }
  const auto coeffs = polyfit(xs, ys, 2);
  ASSERT_EQ(coeffs.size(), 3u);
  EXPECT_NEAR(coeffs[0], 3.0, 1e-9);
  EXPECT_NEAR(coeffs[1], -2.0, 1e-9);
  EXPECT_NEAR(coeffs[2], 0.5, 1e-9);
  EXPECT_NEAR(polyval(coeffs, 2.0), 3.0 - 4.0 + 2.0, 1e-9);
}

TEST(Polyfit, RejectsUnderdeterminedSystems) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {1, 2};
  EXPECT_THROW((void)polyfit(xs, ys, 2), std::invalid_argument);
  const std::vector<double> bad = {1};
  EXPECT_THROW((void)polyfit(xs, bad, 1), std::invalid_argument);
}

TEST(Summary, FiveNumbersPlusMean) {
  const auto s = summarize(kSample);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.n, kSample.size());
  EXPECT_FALSE(format_summary(s).empty());
}

TEST(Summary, EmptyIsZeroed) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Histogram, BinsAndClamping) {
  const std::vector<double> xs = {-1.0, 0.1, 0.5, 0.9, 5.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -1.0 clamped in, 0.1
  EXPECT_EQ(h[1], 3u);  // 0.5, 0.9, 5.0 clamped
  EXPECT_THROW((void)histogram(xs, 1.0, 0.0, 2), std::invalid_argument);
  EXPECT_THROW((void)histogram(xs, 0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::util
