#include "study/subarray_re.h"

#include <gtest/gtest.h>

#include "bender/platform.h"

namespace hbmrd::study {
namespace {

struct SubarrayFixture : ::testing::Test {
  bender::Platform platform;
  bender::HbmChip& chip = platform.chip(2);  // identity mapping
  AddressMap map = AddressMap::from_scheme(chip.profile().mapping);
  dram::BankAddress bank{0, 0, 0};
};

TEST_F(SubarrayFixture, CrossingDetectedInsideASubarray) {
  // Rows 4300/4301 share subarray 5.
  EXPECT_TRUE(disturbance_crosses(chip, map, bank, 4300));
}

TEST_F(SubarrayFixture, NoCrossingAtKnownBoundary) {
  // Subarray 0 (rows 0..831) ends at 831; 832 starts subarray 1.
  EXPECT_FALSE(disturbance_crosses(chip, map, bank, 831));
  // The resilient middle subarray boundary too.
  const int middle_start = dram::subarray_start(dram::kMiddleSubarray);
  EXPECT_FALSE(disturbance_crosses(chip, map, bank, middle_start - 1));
  // Resilient subarrays still flip internally under the boosted probe.
  EXPECT_TRUE(disturbance_crosses(chip, map, bank, middle_start + 100));
}

TEST_F(SubarrayFixture, EdgeValidation) {
  EXPECT_THROW((void)disturbance_crosses(chip, map, bank, -1),
               std::out_of_range);
  EXPECT_THROW((void)disturbance_crosses(chip, map, bank,
                                          dram::kRowsPerBank - 1),
               std::out_of_range);
}

TEST_F(SubarrayFixture, RecoversTheFullLayout) {
  const auto layout = find_subarray_layout(chip, map, bank);
  ASSERT_EQ(layout.count(), dram::kSubarrays);
  for (int s = 0; s < dram::kSubarrays; ++s) {
    EXPECT_EQ(layout.starts[static_cast<std::size_t>(s)],
              dram::subarray_start(s))
        << "subarray " << s;
    EXPECT_EQ(layout.size_of(s), dram::subarray_size(s)) << "subarray " << s;
  }
}

TEST_F(SubarrayFixture, LayoutWorksThroughNonTrivialMapping) {
  auto& swapped_chip = platform.chip(0);  // pair-swap mapping
  const auto swapped_map =
      AddressMap::from_scheme(swapped_chip.profile().mapping);
  // Probe only the first boundary to keep runtime low; the mapping must
  // not confuse the physical-space walk.
  EXPECT_FALSE(disturbance_crosses(swapped_chip, swapped_map, bank, 831));
  EXPECT_TRUE(disturbance_crosses(swapped_chip, swapped_map, bank, 500));
}

TEST(SubarrayLayout, SizeOfUsesNextStart) {
  SubarrayLayout layout;
  layout.starts = {0, 832, 1600};
  EXPECT_EQ(layout.count(), 3);
  EXPECT_EQ(layout.size_of(0), 832);
  EXPECT_EQ(layout.size_of(1), 768);
  EXPECT_EQ(layout.size_of(2), dram::kRowsPerBank - 1600);
}

}  // namespace
}  // namespace hbmrd::study
