#include "study/address_map.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bender/platform.h"

namespace hbmrd::study {
namespace {

TEST(AddressMap, FromSchemeDelegatesToMapping) {
  const auto map = AddressMap::from_scheme(dram::MappingScheme::kPairSwap);
  EXPECT_EQ(map.scheme(), dram::MappingScheme::kPairSwap);
  EXPECT_EQ(map.to_physical(1), 2);
  EXPECT_EQ(map.to_logical(2), 1);
}

TEST(AddressMap, AggressorsOfReturnsPhysicalNeighbors) {
  const auto map = AddressMap::from_scheme(dram::MappingScheme::kPairSwap);
  // Logical 1 -> physical 2; physical neighbours 1, 3 -> logical 2, 3.
  const auto aggressors = map.aggressors_of(1);
  ASSERT_EQ(aggressors.size(), 2u);
  EXPECT_NE(std::find(aggressors.begin(), aggressors.end(), 2),
            aggressors.end());
  EXPECT_NE(std::find(aggressors.begin(), aggressors.end(), 3),
            aggressors.end());
}

TEST(AddressMap, AggressorsClippedAtBankEdges) {
  const auto map = AddressMap::from_scheme(dram::MappingScheme::kIdentity);
  EXPECT_EQ(map.aggressors_of(0).size(), 1u);
  EXPECT_EQ(map.aggressors_of(dram::kRowsPerBank - 1).size(), 1u);
  EXPECT_EQ(map.aggressors_of(100).size(), 2u);
}

TEST(AddressMap, PhysicalRingOrdersByDistance) {
  const auto map = AddressMap::from_scheme(dram::MappingScheme::kIdentity);
  const auto ring = map.physical_ring(1000, 3);
  ASSERT_EQ(ring.size(), 6u);
  EXPECT_EQ(ring[0], 999);
  EXPECT_EQ(ring[1], 1001);
  EXPECT_EQ(ring[2], 998);
  EXPECT_EQ(ring[5], 1003);
}

/// End-to-end reverse engineering against chips with known ground truth.
class ReverseEngineerTest : public ::testing::TestWithParam<int> {};

TEST_P(ReverseEngineerTest, RecoversVendorScheme) {
  bender::Platform platform;
  auto& chip = platform.chip(GetParam());
  const auto map =
      AddressMap::reverse_engineer(chip, dram::BankAddress{0, 0, 0});
  EXPECT_EQ(map.scheme(), chip.profile().mapping);
}

// Chips 0/2/4 cover all three modeled scheme families (pair-swap,
// identity, interleave-8).
INSTANTIATE_TEST_SUITE_P(KnownChips, ReverseEngineerTest,
                         ::testing::Values(0, 2, 4));

TEST(ReverseEngineer, RecoversMirror8OnACustomChip) {
  // No stock chip ships mirror-8; build one to prove the probe handles the
  // full scheme family.
  auto profile = dram::chip_profiles()[2];
  profile.mapping = dram::MappingScheme::kMirror8;
  bender::HbmChip chip(profile);
  const auto map =
      AddressMap::reverse_engineer(chip, dram::BankAddress{0, 0, 0});
  EXPECT_EQ(map.scheme(), dram::MappingScheme::kMirror8);
}

TEST(ReverseEngineer, RejectsBadProbeBase) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  EXPECT_THROW((void)AddressMap::reverse_engineer(
                   chip, dram::BankAddress{0, 0, 0}, 4097),
               std::invalid_argument);
  EXPECT_THROW(
      (void)AddressMap::reverse_engineer(chip, dram::BankAddress{0, 0, 0}, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::study
