#include "bender/program.h"

#include <gtest/gtest.h>

#include <array>

namespace hbmrd::bender {
namespace {

constexpr dram::BankAddress kBank{0, 0, 0};

TEST(ProgramBuilder, BuildsRawSequence) {
  ProgramBuilder builder;
  builder.act(kBank, 10).wait(5).pre(kBank).ref(0).mrs(4, 1);
  const auto program = std::move(builder).build();
  ASSERT_EQ(program.instructions.size(), 5u);
  EXPECT_TRUE(std::holds_alternative<ActInstr>(program.instructions[0]));
  EXPECT_TRUE(std::holds_alternative<WaitInstr>(program.instructions[1]));
  EXPECT_TRUE(std::holds_alternative<PreInstr>(program.instructions[2]));
  EXPECT_TRUE(std::holds_alternative<RefInstr>(program.instructions[3]));
  EXPECT_TRUE(std::holds_alternative<MrsInstr>(program.instructions[4]));
  EXPECT_EQ(std::get<ActInstr>(program.instructions[0]).row, 10);
}

TEST(ProgramBuilder, WriteRowExpandsToColumnWrites) {
  ProgramBuilder builder;
  builder.write_row(kBank, 7, dram::RowBits::filled(0xAB));
  const auto program = std::move(builder).build();
  // ACT + 32 WR + PRE.
  ASSERT_EQ(program.instructions.size(), 2u + dram::kColumns);
  EXPECT_EQ(program.wdata.size(), static_cast<std::size_t>(dram::kColumns));
  const auto& wr = std::get<WrInstr>(program.instructions[1]);
  EXPECT_EQ(wr.column, 0);
  // Slot data carries the pattern.
  EXPECT_EQ(program.wdata[0][0] & 0xFFu, 0xABu);
}

TEST(ProgramBuilder, ReadRowExpandsToColumnReads) {
  ProgramBuilder builder;
  builder.read_row(kBank, 7);
  const auto program = std::move(builder).build();
  ASSERT_EQ(program.instructions.size(), 2u + dram::kColumns);
  EXPECT_TRUE(std::holds_alternative<RdInstr>(program.instructions[5]));
}

TEST(ProgramBuilder, HammerEmitsCountedLoop) {
  ProgramBuilder builder;
  const std::array<int, 2> rows = {100, 102};
  builder.hammer(kBank, rows, 5000, 60);
  const auto program = std::move(builder).build();
  const auto& begin = std::get<LoopBeginInstr>(program.instructions[0]);
  EXPECT_EQ(begin.iterations, 5000u);
  // act + wait + pre per row, then loop end.
  ASSERT_EQ(program.instructions.size(), 1u + 2 * 3 + 1);
  EXPECT_TRUE(std::holds_alternative<LoopEndInstr>(program.instructions.back()));
}

TEST(ProgramBuilder, HammerWithMinimumOnTimeOmitsWait) {
  ProgramBuilder builder;
  const std::array<int, 1> rows = {100};
  builder.hammer(kBank, rows, 10);
  const auto program = std::move(builder).build();
  ASSERT_EQ(program.instructions.size(), 4u);  // loop, act, pre, end
}

TEST(ProgramBuilder, ValidatesLoops) {
  ProgramBuilder builder;
  EXPECT_THROW(builder.loop_begin(0), std::invalid_argument);
  EXPECT_THROW(builder.loop_end(), std::invalid_argument);
  builder.loop_begin(2);
  EXPECT_THROW(builder.loop_begin(2), std::invalid_argument);  // nested
  ProgramBuilder unterminated;
  unterminated.loop_begin(2);
  EXPECT_THROW(std::move(unterminated).build(), std::invalid_argument);
}

TEST(ProgramBuilder, ValidatesHammerArguments) {
  ProgramBuilder builder;
  const std::array<int, 1> rows = {5};
  EXPECT_THROW(builder.hammer(kBank, {}, 100), std::invalid_argument);
  EXPECT_THROW(builder.hammer(kBank, rows, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::bender
