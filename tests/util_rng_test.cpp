#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace hbmrd::util {
namespace {

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Adjacent inputs should differ in many bits.
  const std::uint64_t diff = mix64(1000) ^ mix64(1001);
  EXPECT_GE(__builtin_popcountll(diff), 16);
}

TEST(HashKey, DependsOnEveryPart) {
  const auto base = hash_key(1, 2, 3, 4);
  EXPECT_NE(base, hash_key(9, 2, 3, 4));
  EXPECT_NE(base, hash_key(1, 9, 3, 4));
  EXPECT_NE(base, hash_key(1, 2, 9, 4));
  EXPECT_NE(base, hash_key(1, 2, 3, 9));
  EXPECT_EQ(base, hash_key(1, 2, 3, 4));
}

TEST(Uniform, InUnitIntervalAndWellSpread) {
  double sum = 0.0;
  double min = 1.0;
  double max = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = uniform(7, i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    min = std::min(min, u);
    max = std::max(max, u);
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
  EXPECT_LT(min, 0.001);
  EXPECT_GT(max, 0.999);
}

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.841344746), 1.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(1e-9), -5.997807, 1e-4);
}

TEST(InverseNormalCdf, RoundTripsThroughErfc) {
  // Phi(Phi^-1(p)) == p across the full range, including deep tails.
  for (double p : {1e-12, 1e-6, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-9}) {
    const double z = inverse_normal_cdf(p);
    const double round_trip = 0.5 * std::erfc(-z * M_SQRT1_2);
    EXPECT_NEAR(round_trip, p, 1e-8 + p * 1e-6) << "p=" << p;
  }
}

TEST(InverseNormalCdf, EdgeCases) {
  EXPECT_EQ(inverse_normal_cdf(0.0), -HUGE_VAL);
  EXPECT_EQ(inverse_normal_cdf(1.0), HUGE_VAL);
}

TEST(Normal, MomentsAreStandard) {
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double z = normal(99, i);
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

TEST(Lognormal, MedianMatchesMu) {
  std::vector<double> xs;
  for (int i = 0; i < 9999; ++i) xs.push_back(lognormal(2.0, 0.5, 5, i));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(2.0), 0.2);
}

TEST(Stream, DeterministicAndDistinct) {
  Stream a(123);
  Stream b(123);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = a.next_u64();
    EXPECT_EQ(x, b.next_u64());
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Stream, NextBelowRespectsBound) {
  Stream s(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(s.next_below(17), 17u);
  }
  EXPECT_EQ(s.next_below(0), 0u);
}

}  // namespace
}  // namespace hbmrd::util
