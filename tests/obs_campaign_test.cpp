// Campaign observability contract (docs/OBSERVABILITY.md):
//
//   * deterministic counters are byte-equal between --jobs 1 and --jobs N
//     (the registry's fingerprint is an oracle for the parallel runner);
//   * attaching metrics/trace/progress changes no committed CSV or journal
//     byte;
//   * the snapshot carries the catalogued keys even when counts are zero,
//     so downstream tooling can rely on the key set.
#include "runner/runner.h"

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "bender/platform.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace hbmrd::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "obs_campaign_test_" + name;
}

/// Chip 2: ambient, identity row mapping, no documented TRR.
bender::HbmChip fresh_chip() {
  return bender::HbmChip(dram::chip_profiles()[2]);
}

const std::vector<std::string> kColumns = {"flips", "victim_byte"};

/// Self-initializing double-sided hammer trials (runner_test idiom); the
/// aggressor list repeats row-1 so the bank's dedup counter moves.
std::vector<CampaignRunner::Trial> make_trials(int n) {
  std::vector<CampaignRunner::Trial> trials;
  for (int t = 0; t < n; ++t) {
    const int row = 64 + 8 * t;
    const auto pattern = static_cast<std::uint8_t>(0x40 + t);
    trials.push_back(
        {"row" + std::to_string(row),
         [row, pattern](bender::ChipSession& session)
             -> std::vector<std::string> {
           const dram::RowAddress victim{{0, 0, 0}, row};
           session.write_row(victim, dram::RowBits::filled(pattern));
           session.write_row({{0, 0, 0}, row - 1},
                             dram::RowBits::filled(0xFF));
           session.write_row({{0, 0, 0}, row + 1},
                             dram::RowBits::filled(0xFF));
           const std::array<int, 3> aggressors = {row - 1, row + 1, row - 1};
           session.hammer({0, 0, 0}, aggressors, 20000);
           const auto bits = session.read_row(victim);
           return {std::to_string(
                       bits.count_diff(dram::RowBits::filled(pattern))),
                   std::to_string(bits.words()[0] & 0xFF)};
         }});
  }
  return trials;
}

fault::FaultPlanConfig noisy_faults() {
  fault::FaultPlanConfig faults;
  faults.transient_rate = 0.4;
  faults.thermal_rate = 0.2;
  return faults;
}

struct ObservedRun {
  CampaignReport report;
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  std::string csv;
  std::string journal;
};

void run_observed(ObservedRun& out, int jobs, const std::string& tag,
                  int n_trials, obs::ProgressReporter* progress = nullptr) {
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = kColumns;
  config.faults = noisy_faults();
  config.results_path = tmp_path(tag + ".csv");
  config.journal_path = tmp_path(tag + ".jsonl");
  config.jobs = jobs;
  config.metrics = &out.metrics;
  config.trace = &out.trace;
  config.progress = progress;
  CampaignRunner campaign(chip, config);
  out.report = campaign.run(make_trials(n_trials));
  out.csv = slurp(config.results_path);
  out.journal = slurp(config.journal_path);
}

TEST(ObsCampaign, DeterministicCountersAreByteEqualAcrossJobs) {
  ObservedRun serial;
  run_observed(serial, 1, "det_j1", 8);
  const auto fingerprint = serial.metrics.deterministic_fingerprint();
  ASSERT_FALSE(fingerprint.empty());
  for (int jobs : {2, 4}) {
    ObservedRun parallel;
    run_observed(parallel, jobs, "det_j" + std::to_string(jobs), 8);
    EXPECT_EQ(fingerprint, parallel.metrics.deterministic_fingerprint())
        << "jobs=" << jobs;
    EXPECT_EQ(serial.csv, parallel.csv) << "jobs=" << jobs;
    EXPECT_EQ(serial.journal, parallel.journal) << "jobs=" << jobs;
  }
}

TEST(ObsCampaign, AttachingObservabilityChangesNoCommittedByte) {
  // Bare run (no observability) vs fully instrumented run.
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = kColumns;
  config.faults = noisy_faults();
  config.results_path = tmp_path("bare.csv");
  config.journal_path = tmp_path("bare.jsonl");
  config.jobs = 4;
  CampaignRunner campaign(chip, config);
  (void)campaign.run(make_trials(6));
  const auto bare_csv = slurp(config.results_path);
  const auto bare_journal = slurp(config.journal_path);

  std::ostringstream progress_out;
  double now = 0.0;
  obs::ProgressReporter::Options options;
  options.min_interval_s = 0.0;  // emit on every update
  options.out = &progress_out;
  options.clock = [&now] { return now += 0.25; };
  obs::ProgressReporter progress(options);

  ObservedRun observed;
  run_observed(observed, 4, "instrumented", 6, &progress);
  progress.finish();

  EXPECT_EQ(bare_csv, observed.csv);
  EXPECT_EQ(bare_journal, observed.journal);
  EXPECT_GT(progress.lines_emitted(), 0u);
  EXPECT_NE(progress_out.str().find("progress:"), std::string::npos);
  EXPECT_NE(progress_out.str().find("/6 trials"), std::string::npos);
}

TEST(ObsCampaign, CountersTellTheCampaignStory) {
  ObservedRun run;
  run_observed(run, 2, "story", 8);
  const auto& m = run.metrics;

  EXPECT_EQ(m.counter("campaign.trials"), 8u);
  EXPECT_EQ(m.counter("campaign.completed"), run.report.completed);
  EXPECT_EQ(m.counter("campaign.quarantined"), run.report.quarantined);
  EXPECT_EQ(m.counter("campaign.retries"), run.report.retries);
  EXPECT_EQ(m.counter("campaign.aborts"), 0u);

  // The hammer loops go through the executor; the device observes them.
  EXPECT_GT(m.counter("exec.acts"), 0u);
  EXPECT_GT(m.counter("exec.pres"), 0u);
  EXPECT_GT(m.counter("exec.hammer_windows"), 0u);
  EXPECT_GT(m.counter("device.acts"), 0u);
  EXPECT_GT(m.counter("device.hammer_windows"), 0u);
  // The aggressor list repeats a row, so steps fold into dedup hits.
  EXPECT_GT(m.counter("device.dedup_hits"), 0u);
  EXPECT_EQ(m.counter("device.acts"),
            run.report.device_counters.activations);

  // Threshold summaries were consulted; every lookup is hit or miss.
  EXPECT_GT(m.counter("cache.lookups"), 0u);
  EXPECT_EQ(m.counter("cache.lookups"),
            m.counter("cache.hits") + m.counter("cache.misses"));
  // The epoch-relative summary_* counters partition the same lookups and
  // are deterministic (they ride in the fingerprint compared across jobs
  // by DeterministicCountersAreByteEqualAcrossJobs above).
  EXPECT_EQ(m.counter("cache.lookups"),
            m.counter("cache.summary_hits") +
                m.counter("cache.summary_misses"));
  EXPECT_GT(m.counter("cache.summary_misses"), 0u);
  const auto fingerprint = m.deterministic_fingerprint();
  for (const char* key : {"cache.summary_hits=", "cache.summary_misses=",
                          "cache.summary_evictions="}) {
    EXPECT_NE(fingerprint.find(key), std::string::npos) << key;
  }

  // Faults were injected (noisy plan) and all artifact I/O was counted.
  EXPECT_GT(m.counter("faults.injected"), 0u);
  EXPECT_GT(m.counter("store.appends"), 0u);
  EXPECT_GT(m.counter("store.append_bytes"), 0u);
  EXPECT_GT(m.counter("store.replaces"), 0u);  // manifest

  // Spans: one campaign, one recover scan, one trial span per executed
  // trial, one commit per committed record.
  EXPECT_EQ(run.trace.span("campaign").count, 1u);
  // Fresh run: the recover scan never happens (see the resume test below).
  EXPECT_EQ(run.trace.span("campaign/recover").count, 0u);
  EXPECT_EQ(run.trace.span("campaign/trial").count,
            run.report.completed + run.report.quarantined);
  EXPECT_EQ(run.trace.span("campaign/commit").count,
            run.report.completed + run.report.quarantined);

  // The snapshot carries the whole catalogue even for zero counts.
  const auto json = run.metrics.to_json(&run.trace);
  for (const char* key :
       {"\"campaign.resumed\"", "\"recovery.corrupt_rows\"",
        "\"exec.refs\"", "\"store.fsyncs\"", "\"faults.thermal_excursions\"",
        "\"trial.wall_s\"", "\"campaign.wall_s\"", "\"spans\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ObsCampaign, ResumedTrialsCountWithoutReExecution) {
  const auto csv = tmp_path("resume.csv");
  const auto journal = tmp_path("resume.jsonl");
  {
    auto chip = fresh_chip();
    RunnerConfig config;
    config.result_columns = kColumns;
    config.faults = noisy_faults();
    config.results_path = csv;
    config.journal_path = journal;
    config.stop_after_trials = 3;
    CampaignRunner campaign(chip, config);
    const auto report = campaign.run(make_trials(8));
    EXPECT_TRUE(report.aborted);
  }
  auto chip = fresh_chip();
  RunnerConfig config;
  config.result_columns = kColumns;
  config.faults = noisy_faults();
  config.results_path = csv;
  config.journal_path = journal;
  config.resume = true;
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  config.metrics = &metrics;
  config.trace = &trace;
  CampaignRunner campaign(chip, config);
  const auto report = campaign.run(make_trials(8));
  EXPECT_FALSE(report.aborted);
  EXPECT_EQ(trace.span("campaign/recover").count, 1u);
  EXPECT_EQ(metrics.counter("campaign.resumed"), report.resumed);
  EXPECT_EQ(metrics.counter("campaign.resumed"), 3u);
  EXPECT_EQ(metrics.counter("campaign.completed") +
                metrics.counter("campaign.quarantined"),
            5u);
}

}  // namespace
}  // namespace hbmrd::runner
