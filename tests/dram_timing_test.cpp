#include "dram/timing.h"

#include <gtest/gtest.h>

namespace hbmrd::dram {
namespace {

TEST(TimingParams, PaperDerivedQuantities) {
  const TimingParams t;
  // Sec. 7: activation budget between two REFs.
  EXPECT_EQ(t.activation_budget(), 78);
  // Sec. 7: the bypass pattern repeats 8205 times per refresh window.
  EXPECT_EQ(t.refs_per_window(), 8205);
  EXPECT_EQ(t.rows_per_ref(), 2);
  // Sec. 2.2: a REF may be delayed by at most 9 * tREFI = 35.1 us.
  EXPECT_NEAR(cycles_to_ns(t.max_ref_delay()), 35100.0, 150.0);
  EXPECT_NEAR(cycles_to_ns(t.t_refi), 3900.0, 1.0);
  EXPECT_NEAR(cycles_to_seconds(t.t_refw), 0.032, 1e-6);
  // Minimum aggressor on-time is tRAS-limited at ~29-30 ns (Sec. 6).
  EXPECT_NEAR(cycles_to_ns(t.t_ras), 30.0, 1.5);
}

TEST(TimingConversions, RoundTrip) {
  EXPECT_EQ(ns_to_cycles(cycles_to_ns(1234)), 1234u);
  EXPECT_EQ(seconds_to_cycles(1.0), 600'000'000u);
  EXPECT_DOUBLE_EQ(cycles_to_seconds(600'000'000), 1.0);
}

TEST(BankTimingChecker, LegalSequenceAccepted) {
  const TimingParams t;
  BankTimingChecker checker(t);
  EXPECT_NO_THROW(checker.on_activate(100));
  EXPECT_NO_THROW(checker.on_read(100 + t.t_rcd));
  EXPECT_NO_THROW(checker.on_write(100 + t.t_rcd + 1));
  EXPECT_NO_THROW(checker.on_precharge(100 + t.t_ras));
  EXPECT_NO_THROW(checker.on_activate(100 + t.t_rc));
  EXPECT_NO_THROW(checker.on_precharge(100 + t.t_rc + t.t_ras));
  EXPECT_NO_THROW(checker.on_refresh(100 + t.t_rc + t.t_ras + t.t_rp));
}

TEST(BankTimingChecker, OpenCloseStateMachine) {
  BankTimingChecker checker{TimingParams{}};
  EXPECT_FALSE(checker.bank_open());
  checker.on_activate(0);
  EXPECT_TRUE(checker.bank_open());
  EXPECT_EQ(checker.open_since(), 0u);
  EXPECT_THROW(checker.on_activate(1000), TimingViolation);  // already open
  checker.on_precharge(100);
  EXPECT_FALSE(checker.bank_open());
  EXPECT_NO_THROW(checker.on_precharge(101));  // PRE of closed bank: no-op
}

TEST(BankTimingChecker, ReadWriteRequireOpenRow) {
  BankTimingChecker checker{TimingParams{}};
  EXPECT_THROW(checker.on_read(10), TimingViolation);
  EXPECT_THROW(checker.on_write(10), TimingViolation);
  checker.on_activate(100);
  EXPECT_THROW(checker.on_read(101), TimingViolation);  // tRCD
}

TEST(BankTimingChecker, RefreshRequiresPrechargedBank) {
  const TimingParams t;
  BankTimingChecker checker(t);
  checker.on_activate(0);
  EXPECT_THROW(checker.on_refresh(1000), TimingViolation);
  checker.on_precharge(t.t_ras);
  EXPECT_THROW(checker.on_refresh(t.t_ras + 1), TimingViolation);  // tRP
  EXPECT_NO_THROW(checker.on_refresh(t.t_ras + t.t_rp));
  // Back-to-back REFs honour tRFC.
  EXPECT_THROW(checker.on_refresh(t.t_ras + t.t_rp + 1), TimingViolation);
  EXPECT_NO_THROW(checker.on_refresh(t.t_ras + t.t_rp + t.t_rfc));
}

/// Property sweep: a gap below each minimum constraint is rejected, the
/// exact minimum is accepted.
class TimingGapTest : public ::testing::TestWithParam<int> {};

TEST_P(TimingGapTest, TRasBoundary) {
  const TimingParams t;
  const int deficit = GetParam();
  BankTimingChecker checker(t);
  checker.on_activate(1000);
  const Cycle pre = 1000 + t.t_ras - static_cast<Cycle>(deficit);
  if (deficit > 0) {
    EXPECT_THROW(checker.on_precharge(pre), TimingViolation);
  } else {
    EXPECT_NO_THROW(checker.on_precharge(pre));
  }
}

TEST_P(TimingGapTest, TRcBoundary) {
  const TimingParams t;
  const int deficit = GetParam();
  BankTimingChecker checker(t);
  checker.on_activate(1000);
  checker.on_precharge(1000 + t.t_ras);
  const Cycle act = 1000 + t.t_rc - static_cast<Cycle>(deficit);
  if (deficit > 0) {
    EXPECT_THROW(checker.on_activate(act), TimingViolation);
  } else {
    EXPECT_NO_THROW(checker.on_activate(act));
  }
}

INSTANTIATE_TEST_SUITE_P(GapSweep, TimingGapTest,
                         ::testing::Values(-8, -2, -1, 0, 1, 2, 5));

}  // namespace
}  // namespace hbmrd::dram
