#include "dram/row_data.h"

#include <gtest/gtest.h>

#include <array>

namespace hbmrd::dram {
namespace {

TEST(RowBits, DefaultIsAllZero) {
  const RowBits row;
  for (int bit = 0; bit < kRowBits; bit += 101) EXPECT_FALSE(row.get(bit));
  EXPECT_EQ(row.count_diff(RowBits{}), 0);
}

TEST(RowBits, FilledPattern) {
  const auto row = RowBits::filled(0x55);
  // 0x55: bits 0, 2, 4, 6 of every byte set.
  EXPECT_TRUE(row.get(0));
  EXPECT_FALSE(row.get(1));
  EXPECT_TRUE(row.get(2));
  EXPECT_TRUE(row.get(8));
  const auto all = RowBits::filled(0xFF);
  EXPECT_EQ(all.count_diff(RowBits::filled(0x00)), kRowBits);
  EXPECT_EQ(row.count_diff(RowBits::filled(0xAA)), kRowBits);
}

TEST(RowBits, SetGetRoundTrip) {
  RowBits row;
  row.set(0, true);
  row.set(63, true);
  row.set(64, true);
  row.set(8191, true);
  EXPECT_TRUE(row.get(0));
  EXPECT_TRUE(row.get(63));
  EXPECT_TRUE(row.get(64));
  EXPECT_TRUE(row.get(8191));
  EXPECT_EQ(row.count_diff(RowBits{}), 4);
  row.set(64, false);
  EXPECT_FALSE(row.get(64));
}

TEST(RowBits, DiffPositions) {
  RowBits a;
  RowBits b = a;
  b.set(5, true);
  b.set(4000, true);
  const auto positions = a.diff_positions(b);
  ASSERT_EQ(positions.size(), 2u);
  EXPECT_EQ(positions[0], 5);
  EXPECT_EQ(positions[1], 4000);
}

TEST(RowBits, ColumnAccess) {
  RowBits row;
  std::array<std::uint64_t, kWordsPerColumn> data;
  data.fill(0xDEADBEEFCAFEF00Dull);
  row.set_column(3, data);
  std::array<std::uint64_t, kWordsPerColumn> back{};
  row.get_column(3, back);
  EXPECT_EQ(back, data);
  // Neighbouring columns untouched.
  row.get_column(2, back);
  for (auto w : back) EXPECT_EQ(w, 0u);
  // The column occupies bits [3 * 256, 4 * 256).
  EXPECT_TRUE(row.get(3 * kBitsPerColumn + 0));
  EXPECT_FALSE(row.get(2 * kBitsPerColumn + 0));
}

TEST(RowBits, ColumnBoundsChecked) {
  RowBits row;
  std::array<std::uint64_t, kWordsPerColumn> data{};
  EXPECT_THROW(row.set_column(-1, data), std::out_of_range);
  EXPECT_THROW(row.set_column(kColumns, data), std::out_of_range);
  std::array<std::uint64_t, 2> short_data{};
  EXPECT_THROW(row.set_column(0, short_data), std::invalid_argument);
}

}  // namespace
}  // namespace hbmrd::dram
