// The attack/defense arena: deterministic scenario assembly, leaderboard
// serialization, byte-identity of the campaign artifacts across --jobs N,
// and the seeded fuzzer's ability to find a real defense bypass.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "arena/engine.h"
#include "arena/fuzzer.h"
#include "arena/leaderboard.h"
#include "bender/platform.h"
#include "obs/metrics.h"
#include "runner/runner.h"

namespace hbmrd::arena {
namespace {

const auto kMap = study::AddressMap::from_scheme(dram::MappingScheme::kIdentity);

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "arena_test_" + name;
}

bool same_activation(const defense::Activation& a,
                     const defense::Activation& b) {
  return a.bank.channel == b.bank.channel &&
         a.bank.pseudo_channel == b.bank.pseudo_channel &&
         a.bank.bank == b.bank.bank && a.row == b.row &&
         a.on_cycles == b.on_cycles;
}

TEST(Fuzzer, PatternsAreDeterministicPerSeed) {
  PatternConfig base;
  base.windows = 8;
  base.seed = 0xF022;
  const PatternFuzzer fuzzer(kMap, dram::TimingParams{}, base);
  const auto a = fuzzer.pattern(6);
  const auto b = fuzzer.pattern(6);
  ASSERT_EQ(a.tones.size(), b.tones.size());
  for (std::size_t t = 0; t < a.tones.size(); ++t) {
    EXPECT_EQ(a.tones[t].rows, b.tones[t].rows);
    EXPECT_EQ(a.tones[t].frequency, b.tones[t].frequency);
    EXPECT_EQ(a.tones[t].phase, b.tones[t].phase);
    EXPECT_EQ(a.tones[t].amplitude, b.tones[t].amplitude);
    EXPECT_EQ(a.tones[t].on_cycles, b.tones[t].on_cycles);
  }
  const auto ma = fuzzer.materialize(a);
  const auto mb = fuzzer.materialize(b);
  EXPECT_EQ(ma.name, "fuzz#6");
  ASSERT_EQ(ma.stream.size(), mb.stream.size());
  ASSERT_FALSE(ma.stream.empty());
  for (std::size_t i = 0; i < ma.stream.size(); ++i) {
    ASSERT_TRUE(same_activation(ma.stream[i], mb.stream[i])) << i;
  }
  // Distinct indices enumerate distinct patterns.
  const auto other = fuzzer.materialize(fuzzer.pattern(7));
  bool differs = ma.stream.size() != other.stream.size();
  for (std::size_t i = 0; !differs && i < ma.stream.size(); ++i) {
    differs = !same_activation(ma.stream[i], other.stream[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(Scenario, InterleaveIsDeterministicAndPreservesSourceOrder) {
  PatternConfig base;
  base.windows = 16;
  const auto attack = double_sided(kMap, dram::TimingParams{}, base);
  ScenarioConfig config;
  config.tenants = default_tenants(5'000, 0xF022);
  const auto a = build_scenario(config, attack);
  const auto b = build_scenario(config, attack);
  ASSERT_EQ(a.stream.size(), b.stream.size());
  EXPECT_EQ(a.stream.size(),
            a.benign_activations + a.attack_activations);
  for (std::size_t i = 0; i < a.stream.size(); ++i) {
    ASSERT_TRUE(same_activation(a.stream[i], b.stream[i])) << i;
  }
  // The streaming tenant lives alone on bank 6: filtering the merged
  // stream by its bank must reproduce its private stream in order.
  const auto solo = tenant_stream(config.tenants[2]);
  std::vector<defense::Activation> filtered;
  for (const auto& activation : a.stream) {
    if (activation.bank.bank == 6) filtered.push_back(activation);
  }
  ASSERT_EQ(filtered.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    ASSERT_TRUE(same_activation(filtered[i], solo[i])) << i;
  }
  // A different interleave seed reschedules the merge but keeps the
  // multiset of activations (same sources, different bus contention).
  config.interleave_seed = 99;
  const auto c = build_scenario(config, attack);
  ASSERT_EQ(c.stream.size(), a.stream.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.stream.size(); ++i) {
    if (!same_activation(a.stream[i], c.stream[i])) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Leaderboard, CellsRoundTrip) {
  ArenaScore score;
  score.defense = "Graphene";
  score.pattern = "row_press";
  score.flips_leaked = 13;
  score.flips_undefended = 45;
  score.slowdown = 1.0625;
  score.refresh_per_kilo_act = 2.125;
  score.preventive_refreshes = 321;
  score.stalled_acts = 7;
  score.periodic_refs = 8205;
  score.window_boundaries = 2;
  const auto cells = to_cells(score);
  ASSERT_EQ(cells.size(), leaderboard_columns().size());
  const auto parsed = score_from_cells(cells);
  EXPECT_EQ(parsed.defense, score.defense);
  EXPECT_EQ(parsed.pattern, score.pattern);
  EXPECT_EQ(parsed.flips_leaked, score.flips_leaked);
  EXPECT_EQ(parsed.flips_undefended, score.flips_undefended);
  EXPECT_NEAR(parsed.slowdown, score.slowdown, 1e-4);
  EXPECT_NEAR(parsed.refresh_per_kilo_act, score.refresh_per_kilo_act, 1e-3);
  EXPECT_EQ(parsed.preventive_refreshes, score.preventive_refreshes);
  EXPECT_EQ(parsed.stalled_acts, score.stalled_acts);
  EXPECT_EQ(parsed.periodic_refs, score.periodic_refs);
  EXPECT_EQ(parsed.window_boundaries, score.window_boundaries);
  EXPECT_THROW(score_from_cells({"too", "short"}), std::invalid_argument);
}

TEST(Leaderboard, FoldSkipsQuarantinedRecords) {
  ArenaScore score;
  score.defense = "PARA";
  score.pattern = "single_sided";
  score.flips_leaked = 3;
  score.flips_undefended = 20;
  score.stalled_acts = 5;
  runner::TrialRecord ok;
  ok.key = "single_sided|PARA";
  ok.status = runner::TrialStatus::kOk;
  ok.cells = to_cells(score);
  runner::TrialRecord quarantined;
  quarantined.key = "single_sided|Graphene";
  quarantined.status = runner::TrialStatus::kQuarantined;
  obs::MetricsRegistry metrics;
  fold_metrics(metrics, {ok, quarantined});
  EXPECT_EQ(metrics.counter("arena.matches"), 1u);
  EXPECT_EQ(metrics.counter("arena.flips_leaked"), 3u);
  EXPECT_EQ(metrics.counter("arena.flips_undefended"), 20u);
  EXPECT_EQ(metrics.counter("arena.bypasses"), 1u);
  EXPECT_EQ(metrics.counter("arena.stalled_acts"), 5u);
}

/// A small but real arena campaign (matches on the simulator) whose
/// checkpoint must be byte-identical for any worker count — the
/// leaderboard inherits the runner's determinism contract.
TEST(Arena, LeaderboardIsByteIdenticalAcrossJobs) {
  PatternConfig base;
  base.windows = 24;
  base.seed = 0xF022;
  const dram::TimingParams timing = dram::TimingParams{};
  const auto patterns = std::vector<AttackPattern>{
      single_sided(kMap, timing, base), row_press(kMap, timing, base,
                                                 timing.t_refi)};
  ScenarioConfig scenario_config;
  scenario_config.tenants = default_tenants(1'000, 0xF022);
  std::vector<Scenario> scenarios;
  for (const auto& pattern : patterns) {
    scenarios.push_back(build_scenario(scenario_config, pattern));
  }
  const auto defenses = defense_catalogue(2'000);
  const auto roster = {find_defense(defenses, "PARA"),
                       find_defense(defenses, "Graphene-datasheet")};

  const auto run_once = [&](int jobs, const std::string& tag) {
    bender::HbmChip chip(dram::chip_profiles()[2]);
    runner::RunnerConfig config;
    config.result_columns = leaderboard_columns();
    config.results_path = tmp_path(tag + ".csv");
    config.journal_path = tmp_path(tag + ".jsonl");
    config.jobs = jobs;
    runner::CampaignRunner campaign(chip, config);
    std::vector<runner::CampaignRunner::Trial> trials;
    for (const auto& scenario : scenarios) {
      for (const auto& spec : roster) {
        trials.push_back(
            {scenario.attack_name + "|" + spec.name,
             [&scenario, &spec](
                 bender::ChipSession& session) -> std::vector<std::string> {
               const auto map = study::AddressMap::from_scheme(
                   session.profile().mapping);
               return to_cells(run_match(session, map, scenario, spec));
             }});
      }
    }
    const auto report = campaign.run(trials);
    EXPECT_FALSE(report.aborted);
    obs::MetricsRegistry metrics;
    fold_metrics(metrics, report.records);
    return std::pair{slurp(config.results_path),
                     metrics.deterministic_fingerprint()};
  };

  const auto serial = run_once(1, "j1");
  ASSERT_FALSE(serial.first.empty());
  const auto parallel = run_once(4, "j4");
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

/// The seeded fuzzer reproducibly finds a pattern that leaks bitflips past
/// a catalogued defense: enumeration index 6 at seed 0xF022 is a
/// RowPress-heavy multi-tone pattern that stays under Graphene's
/// datasheet-tuned activation threshold while accumulating a lethal
/// aggressor-on time (chip 2: identity mapping, no in-DRAM TRR).
TEST(Arena, FuzzerFindsACataloguedDefenseBypass) {
  bender::Platform platform;
  auto& chip = platform.chip(2);
  PatternConfig base;
  base.windows = 8205;  // one full tREFW of attack pressure
  base.seed = 0xF022;
  const PatternFuzzer fuzzer(kMap, chip.stack().timing(), base);
  const auto pattern = fuzzer.materialize(fuzzer.pattern(6));
  ScenarioConfig scenario_config;
  scenario_config.tenants = default_tenants(2'000, 0xF022);
  const auto scenario = build_scenario(scenario_config, pattern);
  const auto spec =
      find_defense(defense_catalogue(2'000), "Graphene-datasheet");
  const auto score = run_match(chip, kMap, scenario, spec);
  EXPECT_EQ(score.defense, "Graphene-datasheet");
  EXPECT_EQ(score.pattern, "fuzz#6");
  EXPECT_GT(score.flips_undefended, 0u);
  EXPECT_GT(score.flips_leaked, 0u);
  EXPECT_GE(score.slowdown, 1.0);
}

}  // namespace
}  // namespace hbmrd::arena
