// campaign_fsck: offline verification and repair of campaign artifacts.
//
// The verifier must replay exactly the checks a resume applies — record
// CRCs, manifest digests, the row/journal-block cross-replay — so a clean
// fsck certifies the pair is safe to resume. Repair rewrites down to the
// trusted state and keeps every distrusted byte in a quarantine sidecar.
#include "runner/fsck.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bender/platform.h"
#include "fault/faulty_store.h"
#include "runner/runner.h"
#include "util/crc32c.h"
#include "util/csv.h"

namespace hbmrd::runner {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "fsck_test_" + name;
}

struct Artifacts {
  std::string csv;
  std::string jsonl;

  explicit Artifacts(const std::string& tag)
      : csv(tmp_path(tag + ".csv")), jsonl(tmp_path(tag + ".jsonl")) {
    reset();
  }
  ~Artifacts() { reset(); }
  void reset() const {
    for (const auto& path :
         {csv, jsonl, csv + ".manifest", csv + ".quarantine"}) {
      std::remove(path.c_str());
    }
  }
};

/// A small real campaign producing a checkpoint + journal pair.
void run_campaign(const Artifacts& artifacts, int n_trials = 4,
                  bool resume = false,
                  std::shared_ptr<util::Store> store = nullptr) {
  std::vector<CampaignRunner::Trial> trials;
  for (int t = 0; t < n_trials; ++t) {
    trials.push_back({"t" + std::to_string(t),
                      [t](bender::ChipSession&) -> std::vector<std::string> {
                        return {std::to_string(10 * t)};
                      }});
  }
  bender::HbmChip chip(dram::chip_profiles()[2]);
  RunnerConfig config;
  config.result_columns = {"value"};
  config.results_path = artifacts.csv;
  config.journal_path = artifacts.jsonl;
  config.resume = resume;
  config.store = std::move(store);
  CampaignRunner campaign(chip, config);
  const auto report = campaign.run(trials);
  if (store == nullptr) {
    ASSERT_FALSE(report.aborted);
  }
}

FsckReport fsck(const Artifacts& artifacts, bool repair = false) {
  FsckOptions options;
  options.results_path = artifacts.csv;
  options.journal_path = artifacts.jsonl;
  options.repair = repair;
  return campaign_fsck(options);
}

std::string slurp(const std::string& path) {
  return util::default_store()->read(path).value_or("");
}

TEST(CampaignFsck, CleanArtifactsPassEveryCheck) {
  Artifacts artifacts("clean");
  run_campaign(artifacts);
  const auto report = fsck(artifacts);
  EXPECT_TRUE(report.clean()) << (report.issues.empty()
                                      ? "?"
                                      : report.issues.front().what);
  EXPECT_EQ(report.checkpoint_rows, 4u);
  EXPECT_EQ(report.trusted_rows, 4u);
  EXPECT_GT(report.journal_lines, 4u);  // begin + per-trial blocks + end
  EXPECT_FALSE(report.repaired);
}

TEST(CampaignFsck, RecoveredCrashPairIsClean) {
  // Acceptance: after a simulated power cut and a resume, fsck finds the
  // recovered pair clean.
  Artifacts artifacts("recovered");
  fault::StoreFaultConfig crash;
  crash.crash_at_write = 6;
  EXPECT_THROW(run_campaign(artifacts, 4, false,
                            std::make_shared<fault::FaultyStore>(
                                util::default_store(), 17, crash)),
               fault::StoreCrashError);
  run_campaign(artifacts, 4, /*resume=*/true);
  const auto report = fsck(artifacts);
  EXPECT_TRUE(report.clean()) << (report.issues.empty()
                                      ? "?"
                                      : report.issues.front().what);
  EXPECT_EQ(report.trusted_rows, 4u);
}

TEST(CampaignFsck, MissingCheckpointIsFatal) {
  Artifacts artifacts("missing");
  const auto report = fsck(artifacts);
  EXPECT_TRUE(report.fatal);
  EXPECT_FALSE(report.clean());
}

TEST(CampaignFsck, ForeignCsvIsFatalNotRepaired) {
  Artifacts artifacts("foreign");
  util::default_store()->atomic_replace(artifacts.csv,
                                        "time,voltage\n1,3.3\n");
  const auto report = fsck(artifacts, /*repair=*/true);
  EXPECT_TRUE(report.fatal);
  EXPECT_FALSE(report.repaired);
  // Repair refused: the file is untouched.
  EXPECT_EQ(slurp(artifacts.csv), "time,voltage\n1,3.3\n");
}

TEST(CampaignFsck, TornTailIsReportedAndRepairedIntoSidecar) {
  Artifacts artifacts("torn");
  run_campaign(artifacts);
  const auto whole = slurp(artifacts.csv);
  util::default_store()->atomic_replace(artifacts.csv,
                                        whole.substr(0, whole.size() - 7));
  auto report = fsck(artifacts);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.checkpoint_rows, 3u);

  report = fsck(artifacts, /*repair=*/true);
  EXPECT_TRUE(report.repaired);
  // The torn bytes were preserved, not deleted.
  EXPECT_FALSE(slurp(artifacts.csv + ".quarantine").empty());
  // After repair the pair verifies clean (the dropped trial will rerun).
  const auto again = fsck(artifacts);
  EXPECT_TRUE(again.clean()) << (again.issues.empty()
                                     ? "?"
                                     : again.issues.front().what);
  EXPECT_EQ(again.trusted_rows, 3u);
}

TEST(CampaignFsck, CorruptMidFileRowIsQuarantinedByRepair) {
  Artifacts artifacts("rot");
  run_campaign(artifacts);
  auto text = slurp(artifacts.csv);
  const auto at = text.find("\nt1,") + 5;  // a payload byte of row t1
  text[at] = text[at] == '9' ? '8' : '9';
  util::default_store()->atomic_replace(artifacts.csv, text);

  auto report = fsck(artifacts);
  ASSERT_FALSE(report.clean());
  EXPECT_NE(report.issues.front().what.find("CRC"), std::string::npos);

  report = fsck(artifacts, /*repair=*/true);
  EXPECT_TRUE(report.repaired);
  EXPECT_NE(slurp(artifacts.csv + ".quarantine").find("t1,"),
            std::string::npos);
  EXPECT_EQ(slurp(artifacts.csv).find("\nt1,"), std::string::npos);
  const auto again = fsck(artifacts);
  EXPECT_TRUE(again.clean()) << (again.issues.empty()
                                     ? "?"
                                     : again.issues.front().what);
}

TEST(CampaignFsck, CrossReplayCatchesFabricatedAndMislabeledRows) {
  Artifacts artifacts("replay");
  run_campaign(artifacts);

  // Fabricate a CRC-valid row for a trial the journal never finished, and
  // flip a real row's status: both self-consistent, both lies.
  auto text = slurp(artifacts.csv);
  std::string forged = "t9,ok,42";
  text += forged + "," + util::crc32c_hex(util::crc32c(forged)) + "\n";
  const auto begin = text.find("\nt2,ok,") + 1;
  const auto end = text.find('\n', begin);
  std::string mislabeled = "t2,quarantined,";
  util::default_store()->atomic_replace(
      artifacts.csv, text.substr(0, begin) + mislabeled + "," +
                         util::crc32c_hex(util::crc32c(mislabeled)) + "\n" +
                         text.substr(end + 1));

  const auto report = fsck(artifacts);
  EXPECT_FALSE(report.clean());
  bool saw_forged = false, saw_mislabeled = false;
  for (const auto& issue : report.issues) {
    if (issue.what.find("t9") != std::string::npos) saw_forged = true;
    if (issue.what.find("t2") != std::string::npos) saw_mislabeled = true;
  }
  EXPECT_TRUE(saw_forged);
  EXPECT_TRUE(saw_mislabeled);
  EXPECT_EQ(report.trusted_rows, 3u);  // t0, t1, t3
}

}  // namespace
}  // namespace hbmrd::runner
