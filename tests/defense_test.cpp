#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "bender/platform.h"
#include "defense/blockhammer.h"
#include "defense/graphene.h"
#include "defense/para.h"
#include "defense/protected_session.h"
#include "study/patterns.h"

namespace hbmrd::defense {
namespace {

const auto kMap = study::AddressMap::from_scheme(dram::MappingScheme::kIdentity);
constexpr dram::BankAddress kBank{0, 0, 0};

TEST(Para, ProbabilityFollowsTheFormula) {
  ParaConfig config;
  config.protect_threshold = 10'000;
  config.escape_probability = 1e-6;
  Para para(config, &kMap);
  // (1-p)^T == escape.
  EXPECT_NEAR(std::pow(1.0 - para.probability(), 10'000.0), 1e-6, 1e-8);
}

TEST(Para, RefreshRateMatchesProbability) {
  ParaConfig config;
  config.protect_threshold = 1000;
  config.escape_probability = 1e-4;  // p ~ 0.0092
  Para para(config, &kMap);
  std::uint64_t refreshes = 0;
  constexpr int kActs = 200'000;
  for (int i = 0; i < kActs; ++i) {
    refreshes += para.on_activate(kBank, 5000, 0).refresh_rows.size();
  }
  const double per_act =
      static_cast<double>(refreshes) / (2.0 * kActs);  // 2 victims/refresh
  EXPECT_NEAR(per_act, para.probability(), 0.15 * para.probability());
  EXPECT_EQ(para.stats().observed_activations, kActs);
}

TEST(Para, RefreshTargetsPhysicalNeighbors) {
  ParaConfig config;
  config.protect_threshold = 2;  // p ~ 1: refresh on (almost) every ACT
  config.escape_probability = 1e-9;
  Para para(config, &kMap);
  const auto decision = para.on_activate(kBank, 5000, 0);
  ASSERT_EQ(decision.refresh_rows.size(), 2u);
  EXPECT_EQ(decision.refresh_rows[0], 4999);
  EXPECT_EQ(decision.refresh_rows[1], 5001);
}

TEST(Para, RejectsBadConfig) {
  ParaConfig config;
  EXPECT_THROW(Para(config, nullptr), std::invalid_argument);
  config.protect_threshold = 0;
  EXPECT_THROW(Para(config, &kMap), std::invalid_argument);
}

TEST(MisraGries, ExactBelowCapacity) {
  MisraGries table(8);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(table.observe(42), i + 1u);
  EXPECT_EQ(table.observe(43), 1u);
}

TEST(MisraGries, UndercountBoundedByWindowOverEntries) {
  MisraGries table(4);
  // Stream: heavy element appears 1000 times among 3000 others.
  std::uint64_t last = 0;
  util::Stream rng(1);
  for (int i = 0; i < 4000; ++i) {
    if (i % 4 == 0) {
      last = table.observe(7);
    } else {
      table.observe(1000 + static_cast<int>(rng.next_below(500)));
    }
  }
  // True count 1000; estimate undercounts by at most 4000/4 = 1000 and
  // never overcounts.
  EXPECT_LE(last, 1000u);
  EXPECT_GE(last + 1000u, 1000u);
}

TEST(Graphene, DetectsHeavyHitterBeforeThreshold) {
  GrapheneConfig config;
  config.protect_threshold = 1000;
  config.table_entries = 16;
  config.window_activations = 8000;  // undercount margin 500
  Graphene graphene(config, &kMap);
  EXPECT_EQ(graphene.trigger_count(), 500u);
  std::uint64_t refreshed_at = 0;
  for (std::uint64_t act = 1; act <= 1000; ++act) {
    if (!graphene.on_activate(kBank, 5000, 0).refresh_rows.empty()) {
      refreshed_at = act;
      break;
    }
  }
  ASSERT_GT(refreshed_at, 0u) << "heavy hitter never refreshed";
  EXPECT_LE(refreshed_at, 1000u);
  // After the refresh the counter restarts: the next trigger is another
  // trigger_count activations away.
  std::uint64_t second = 0;
  for (std::uint64_t act = 1; act <= 1000; ++act) {
    if (!graphene.on_activate(kBank, 5000, 0).refresh_rows.empty()) {
      second = act;
      break;
    }
  }
  EXPECT_EQ(second, graphene.trigger_count());
}

TEST(Graphene, WindowBoundaryResetsTables) {
  GrapheneConfig config;
  config.protect_threshold = 100;
  config.table_entries = 8;
  config.window_activations = 400;
  Graphene graphene(config, &kMap);
  for (int i = 0; i < 40; ++i) graphene.on_activate(kBank, 5000, 0);
  graphene.on_window_boundary();
  // Counter restarted: the trigger is a full trigger_count away again.
  std::uint64_t hits = 0;
  for (std::uint64_t act = 1; act <= graphene.trigger_count() - 1; ++act) {
    hits += graphene.on_activate(kBank, 5000, 0).refresh_rows.size();
  }
  EXPECT_EQ(hits, 0u);
}

TEST(Graphene, RejectsUndersizedTable) {
  GrapheneConfig config;
  config.protect_threshold = 100;
  config.table_entries = 4;
  config.window_activations = 100'000;  // undercount 25000 >> threshold
  EXPECT_THROW(Graphene(config, &kMap), std::invalid_argument);
}

TEST(CountingBloom, NeverUndercounts) {
  CountingBloom filter(64, 2, 9);
  for (int i = 0; i < 100; ++i) filter.observe(5);
  EXPECT_GE(filter.estimate(5), 100u);
  filter.decay();
  EXPECT_GE(filter.estimate(5), 50u);
}

TEST(BlockHammer, BlacklistsAndStalls) {
  BlockHammerConfig config;
  config.protect_threshold = 1000;
  config.blacklist_threshold = 100;
  BlockHammer defense(config);
  dram::Cycle stalls = 0;
  for (int i = 0; i < 200; ++i) {
    stalls += defense.on_activate(kBank, 5000, 0).stall_cycles;
  }
  // The first 100 activations pass freely, the rest are throttled.
  EXPECT_EQ(defense.stats().stalled_activations, 100u);
  EXPECT_EQ(stalls, 100 * defense.throttle_stall());
  // The stall paces the row below the protect threshold per window.
  const auto window = config.window_cycles;
  EXPECT_GE(defense.throttle_stall() *
                (config.protect_threshold - config.blacklist_threshold),
            window - (config.protect_threshold -
                      config.blacklist_threshold));
}

TEST(BlockHammer, RejectsBadThresholds) {
  BlockHammerConfig config;
  config.blacklist_threshold = config.protect_threshold;
  EXPECT_THROW(BlockHammer{config}, std::invalid_argument);
}

// -- Integration: each defense stops a real attack on the simulator -------

struct DefenseIntegration : ::testing::Test {
  bender::Platform platform;
  bender::HbmChip& chip = platform.chip(2);  // identity mapping, no TRR
  dram::RowAddress victim{kBank, 4300};
  std::array<int, 2> aggressors = {4299, 4301};

  void init_rows() {
    chip.write_row(victim, study::victim_row_bits(study::DataPattern::kCheckered0));
    for (int row : aggressors) {
      chip.write_row({kBank, row},
                     study::aggressor_row_bits(study::DataPattern::kCheckered0));
    }
  }

  int run_attack(std::unique_ptr<ControllerDefense> defense,
                 std::uint64_t count) {
    init_rows();
    ProtectedSession session(&chip, std::move(defense));
    session.hammer(kBank, aggressors, count);
    return chip.read_row(victim).count_diff(
        study::victim_row_bits(study::DataPattern::kCheckered0));
  }
};

TEST_F(DefenseIntegration, UndefendedAttackFlips) {
  EXPECT_GT(run_attack(std::make_unique<BlockHammer>([] {
              BlockHammerConfig config;
              config.blacklist_threshold = 400'000;  // effectively off
              config.protect_threshold = 800'000;
              return config;
            }()),
                       300'000),
            0);
}

TEST_F(DefenseIntegration, ParaProtects) {
  ParaConfig config;
  config.protect_threshold = 8'000;
  EXPECT_EQ(run_attack(std::make_unique<Para>(config, &kMap), 300'000), 0);
}

TEST_F(DefenseIntegration, GrapheneProtects) {
  GrapheneConfig config;
  config.protect_threshold = 8'000;
  config.table_entries = 64;
  config.window_activations = 300'000;
  EXPECT_EQ(run_attack(std::make_unique<Graphene>(config, &kMap), 150'000),
            0);
}

TEST_F(DefenseIntegration, BlockHammerThrottlingProtects) {
  // Throttling alone never refreshes victims; the session's periodic REF
  // duty (pointer refresh per tREFW) is what clears the bounded dose.
  BlockHammerConfig config;
  config.protect_threshold = 4'000;
  config.blacklist_threshold = 500;
  auto defense = std::make_unique<BlockHammer>(config);
  auto* raw = defense.get();
  EXPECT_EQ(run_attack(std::move(defense), 120'000), 0);
  EXPECT_GT(raw->stats().stalled_activations, 100'000u);
}

TEST_F(DefenseIntegration, GrapheneOverheadFarBelowPara) {
  // Deterministic tracking refreshes only when a row actually approaches
  // the threshold; PARA pays on every activation in expectation.
  ParaConfig para_config;
  para_config.protect_threshold = 8'000;
  auto para = std::make_unique<Para>(para_config, &kMap);
  auto* para_raw = para.get();
  run_attack(std::move(para), 100'000);

  GrapheneConfig graphene_config;
  graphene_config.protect_threshold = 8'000;
  graphene_config.table_entries = 64;
  graphene_config.window_activations = 200'000;
  auto graphene = std::make_unique<Graphene>(graphene_config, &kMap);
  auto* graphene_raw = graphene.get();
  run_attack(std::move(graphene), 100'000);

  EXPECT_LT(graphene_raw->stats().refresh_overhead_per_kilo_act(),
            para_raw->stats().refresh_overhead_per_kilo_act());
}

}  // namespace
}  // namespace hbmrd::defense
