#include "bender/assembly.h"

#include "bender/executor.h"

#include <gtest/gtest.h>

#include <array>

namespace hbmrd::bender {
namespace {

constexpr dram::BankAddress kBank{1, 0, 3};

Program sample_program() {
  ProgramBuilder builder;
  builder.write_row(kBank, 42, dram::RowBits::filled(0xA5));
  const std::array<int, 2> rows = {100, 102};
  builder.hammer(kBank, rows, 5000, 60);
  builder.ref(1).mrs(4, 1).pre_all(1);
  builder.read_row(kBank, 42);
  return std::move(builder).build();
}

TEST(Assembly, RoundTripsExactly) {
  const auto program = sample_program();
  const auto text = to_text(program);
  const auto parsed = parse_program(text);
  ASSERT_EQ(parsed.instructions.size(), program.instructions.size());
  EXPECT_EQ(parsed.wdata, program.wdata);
  // Second round trip is textually identical (stable format).
  EXPECT_EQ(to_text(parsed), text);
}

TEST(Assembly, TextIsHumanReadable) {
  ProgramBuilder builder;
  builder.act(kBank, 7).wait(18).pre(kBank);
  const auto text = to_text(std::move(builder).build());
  EXPECT_EQ(text, "ACT 1 0 3 7\nWAIT 18\nPRE 1 0 3\n");
}

TEST(Assembly, ParsesCommentsAndBlankLines) {
  const auto program = parse_program(
      "# a comment\n"
      "\n"
      "ACT 0 0 0 5   # trailing comment\n"
      "PRE 0 0 0\n");
  ASSERT_EQ(program.instructions.size(), 2u);
  EXPECT_EQ(std::get<ActInstr>(program.instructions[0]).row, 5);
}

TEST(Assembly, ParsedProgramExecutes) {
  dram::StackConfig config;
  config.disturb.seed = 0xA55E;
  dram::Stack stack(config);
  Executor executor(&stack);
  ProgramBuilder builder;
  builder.write_row(kBank, 9, dram::RowBits::filled(0x3C));
  builder.read_row(kBank, 9);
  const auto original = std::move(builder).build();
  const auto result = executor.run(parse_program(to_text(original)));
  EXPECT_EQ(result.row(0), dram::RowBits::filled(0x3C));
}

TEST(Assembly, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_program("FOO 1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_program("ACT 0 0 0\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_program("ACT 0 0 0 1 junk\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_program("WR 0 0 0 1 0x1\n"),  // missing words
               std::invalid_argument);
  // Error messages carry the line number.
  try {
    (void)parse_program("ACT 0 0 0 1\nBAD\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace hbmrd::bender
